#include "hep/profiles.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pkg/synthetic.hpp"
#include "spec/jaccard.hpp"

namespace landlord::hep {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = pkg::default_repository(42);
  return r;
}

TEST(HepApps, SevenBenchmarkApps) {
  const auto apps = benchmark_apps();
  ASSERT_EQ(apps.size(), 7u);
  std::set<std::string> names;
  for (const auto& app : apps) names.insert(app.name);
  EXPECT_TRUE(names.contains("alice-gen-sim"));
  EXPECT_TRUE(names.contains("atlas-gen"));
  EXPECT_TRUE(names.contains("atlas-sim"));
  EXPECT_TRUE(names.contains("cms-digi"));
  EXPECT_TRUE(names.contains("cms-gen-sim"));
  EXPECT_TRUE(names.contains("cms-reco"));
  EXPECT_TRUE(names.contains("lhcb-gen-sim"));
}

TEST(HepApps, PaperNumbersPreserved) {
  // Spot-check against Fig. 2 of the paper.
  for (const auto& app : benchmark_apps()) {
    if (app.name == "atlas-sim") {
      EXPECT_DOUBLE_EQ(app.paper_running_s, 5340.0);
      EXPECT_DOUBLE_EQ(app.paper_prep_s, 115.0);
      EXPECT_DOUBLE_EQ(app.paper_image_gb, 7.6);
      EXPECT_DOUBLE_EQ(app.paper_repo_tb, 4.8);
    }
    EXPECT_GT(app.paper_running_s, 0.0);
    EXPECT_GT(app.paper_image_gb, 0.0);
  }
}

TEST(HepApps, SpecificationsAreDeterministic) {
  const auto& app = benchmark_apps()[0];
  const auto a = app_specification(repo(), app, 1);
  const auto b = app_specification(repo(), app, 1);
  EXPECT_TRUE(a.packages() == b.packages());
}

TEST(HepApps, SpecificationSizeNearPaperTarget) {
  // Greedy accumulation overshoots by at most one leaf closure, and no
  // image can be smaller than its experiment's shared base (framework
  // hub + universal core), which in the synthetic repository is ~6-9 GB.
  constexpr double kBaseFloorGb = 10.0;
  for (const auto& app : benchmark_apps()) {
    const auto spec = app_specification(repo(), app, 1);
    const double gb = static_cast<double>(spec.bytes(repo())) / 1e9;
    EXPECT_GT(gb, app.paper_image_gb * 0.8) << app.name;
    EXPECT_LT(gb, std::max(app.paper_image_gb * 2.5, kBaseFloorGb)) << app.name;
  }
}

TEST(HepApps, SpecificationsAreDependencyClosed) {
  const auto spec = app_specification(repo(), benchmark_apps()[3], 2);
  bool closed = true;
  spec.packages().for_each([&](pkg::PackageId id) {
    for (pkg::PackageId dep : repo()[id].deps) {
      closed &= spec.packages().contains(dep);
    }
  });
  EXPECT_TRUE(closed);
}

TEST(HepApps, SpecDrawsFromOwnExperimentSubtree) {
  const auto& cms_app = benchmark_apps()[3];  // cms-digi
  const auto spec = app_specification(repo(), cms_app, 3);
  int cms = 0, other_experiment = 0;
  spec.packages().for_each([&](pkg::PackageId id) {
    const auto& name = repo()[id].name;
    if (name.starts_with("cms-")) ++cms;
    else if (name.starts_with("atlas-") || name.starts_with("alice-") ||
             name.starts_with("lhcb-")) ++other_experiment;
    // core / sft packages are shared infrastructure; not counted.
  });
  EXPECT_GT(cms, 0);
  EXPECT_GT(cms, other_experiment * 3);
}

TEST(HepApps, SameExperimentAppsShareMoreThanCrossExperiment) {
  // The paper's premise: images from the same experiment overlap heavily.
  const auto atlas_gen = app_specification(repo(), benchmark_apps()[1], 4);
  const auto atlas_sim = app_specification(repo(), benchmark_apps()[2], 4);
  const auto cms_digi = app_specification(repo(), benchmark_apps()[3], 4);
  const double same =
      spec::jaccard_similarity(atlas_gen.packages(), atlas_sim.packages());
  const double cross =
      spec::jaccard_similarity(atlas_gen.packages(), cms_digi.packages());
  EXPECT_GT(same, cross);
}

TEST(HepApps, ProvenanceIsAppName) {
  const auto spec = app_specification(repo(), benchmark_apps()[6], 5);
  EXPECT_EQ(spec.provenance(), "lhcb-gen-sim");
}

TEST(HepApps, DifferentSeedsGiveDifferentSelections) {
  const auto& app = benchmark_apps()[4];
  const auto a = app_specification(repo(), app, 1);
  const auto b = app_specification(repo(), app, 2);
  EXPECT_FALSE(a.packages() == b.packages());
}

}  // namespace
}  // namespace landlord::hep
