// Crash-restart lifecycle: checkpoint, kill, restore, continue.
//
// Exercises sim::run_crash_replay end to end: a zero-fault, no-crash
// replay matches the plain simulation driver request-for-request;
// intact checkpoints restore losslessly; torn checkpoints recover their
// checked prefix; and every configuration replays bit-identically from
// its seed.
#include "sim/crash.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "landlord/persist.hpp"
#include "pkg/synthetic.hpp"
#include "sim/driver.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 29);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

sim::CrashReplayConfig base_config(std::uint32_t shards = 1) {
  sim::CrashReplayConfig config;
  config.cache.alpha = 0.8;
  config.cache.capacity = repo().total_bytes() / 4;
  config.cache.shards = shards;
  config.workload.unique_jobs = 60;
  config.workload.repetitions = 3;
  config.workload.max_initial_selection = 15;
  config.seed = 7;
  config.crash.checkpoint_every = 0;
  config.crash.crash_every = 0;
  return config;
}

void expect_equal_counters(const core::CacheCounters& a,
                           const core::CacheCounters& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.written_bytes, b.written_bytes);
}

TEST(CrashReplay, ZeroFaultNoCrashMatchesPlainSimulation) {
  const auto config = base_config();
  const auto replay = sim::run_crash_replay(repo(), config);

  sim::SimulationConfig plain;
  plain.cache = config.cache;
  plain.workload = config.workload;
  plain.seed = config.seed;
  const auto simulated = sim::run_simulation(repo(), plain);

  expect_equal_counters(replay.counters, simulated.counters);
  EXPECT_EQ(replay.final_image_count, simulated.final_image_count);
  EXPECT_EQ(replay.final_total_bytes, simulated.final_total_bytes);
  EXPECT_EQ(replay.final_unique_bytes, simulated.final_unique_bytes);
  EXPECT_EQ(replay.crashes, 0u);
  EXPECT_EQ(replay.degraded_placements, 0u);
  EXPECT_EQ(replay.failed_placements, 0u);
  EXPECT_EQ(replay.degraded.build_failures, 0u);
}

TEST(CrashReplay, IntactCheckpointsRestoreLosslessly) {
  auto config = base_config();
  config.crash.checkpoint_every = 20;
  config.crash.crash_every = 45;

  const auto result = sim::run_crash_replay(repo(), config);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_GT(result.checkpoints, 0u);
  EXPECT_EQ(result.torn_checkpoints, 0u);
  EXPECT_GT(result.images_recovered, 0u);
  EXPECT_EQ(result.records_lost, 0u);
  EXPECT_EQ(result.degraded.recovered_images, result.images_recovered);
  EXPECT_LE(result.final_unique_bytes, result.final_total_bytes);
  // Every restore rebuilt a decision index that reconciles exactly.
  EXPECT_EQ(result.index_divergences, 0u) << result.first_index_divergence;
  // All requests were still served across every incarnation.
  EXPECT_EQ(result.counters.requests,
            static_cast<std::uint64_t>(config.workload.unique_jobs) *
                config.workload.repetitions);
}

TEST(CrashReplay, TornCheckpointsRecoverPrefixOnly) {
  auto config = base_config();
  config.crash.checkpoint_every = 20;
  config.crash.crash_every = 45;
  config.faults.fail(fault::FaultOp::kSnapshotWrite, 1.0);  // every write torn
  config.faults.seed = 99;

  const auto result = sim::run_crash_replay(repo(), config);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_EQ(result.torn_checkpoints, result.checkpoints);
  EXPECT_GT(result.records_lost, 0u);
  EXPECT_EQ(result.degraded.lost_records, result.records_lost);
  // Even prefix-recovered restores must rebuild an exact index.
  EXPECT_EQ(result.index_divergences, 0u) << result.first_index_divergence;
  // Prefix recovery still salvages something across the run.
  EXPECT_LE(result.final_unique_bytes, result.final_total_bytes);
  EXPECT_EQ(result.counters.requests,
            static_cast<std::uint64_t>(config.workload.unique_jobs) *
                config.workload.repetitions);

  // Torn recovery loses images relative to the intact-checkpoint run.
  auto intact = config;
  intact.faults = fault::FaultPlan{};
  const auto lossless = sim::run_crash_replay(repo(), intact);
  EXPECT_LT(result.images_recovered, lossless.images_recovered);
}

TEST(CrashReplay, SameConfigReplaysBitIdentically) {
  auto config = base_config(4);  // sharded decision layer
  config.crash.checkpoint_every = 15;
  config.crash.crash_every = 40;
  config.faults.fail(fault::FaultOp::kSnapshotWrite, 0.5)
      .fail(fault::FaultOp::kBuilderDownload, 0.2)
      .fail(fault::FaultOp::kMergeRewrite, 0.2);
  config.faults.seed = 1234;
  config.backoff.max_retries = 1;

  const auto first = sim::run_crash_replay(repo(), config);
  const auto second = sim::run_crash_replay(repo(), config);
  expect_equal_counters(first.counters, second.counters);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.checkpoints, second.checkpoints);
  EXPECT_EQ(first.torn_checkpoints, second.torn_checkpoints);
  EXPECT_EQ(first.images_recovered, second.images_recovered);
  EXPECT_EQ(first.records_lost, second.records_lost);
  EXPECT_EQ(first.degraded_placements, second.degraded_placements);
  EXPECT_EQ(first.failed_placements, second.failed_placements);
  EXPECT_EQ(first.degraded.retries, second.degraded.retries);
  EXPECT_DOUBLE_EQ(first.total_prep_seconds, second.total_prep_seconds);
  EXPECT_EQ(first.final_image_count, second.final_image_count);
  EXPECT_EQ(first.final_total_bytes, second.final_total_bytes);

  EXPECT_GT(first.crashes, 0u);
  EXPECT_GT(first.degraded.build_failures, 0u);
}

TEST(CrashReplay, V1CheckpointsWorkWhenNeverTorn) {
  auto config = base_config();
  config.crash.format = core::SnapshotFormat::kV1;
  config.crash.checkpoint_every = 20;
  config.crash.crash_every = 45;

  const auto result = sim::run_crash_replay(repo(), config);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_GT(result.images_recovered, 0u);
  EXPECT_EQ(result.records_lost, 0u);
}

// ---- File-based snapshot I/O under injected faults -------------------

TEST(SnapshotFiles, TornWriteRecoversPrefixOnRead) {
  const auto path = testing::TempDir() + "landlord_torn_snapshot.txt";

  core::CacheConfig config;
  config.capacity = repo().total_bytes();
  core::Cache cache(repo(), config);
  // A handful of images so the torn file retains a non-trivial prefix.
  for (std::uint32_t base = 100; base < 160; base += 4) {
    std::vector<pkg::PackageId> request{pkg::package_id(base),
                                        pkg::package_id(base + 1)};
    (void)cache.request(spec::Specification::from_request(repo(), request));
  }

  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kSnapshotWrite, 1);  // second write torn
  fault::FaultInjector injector(plan);

  ASSERT_TRUE(core::save_cache_file(path, cache, repo(),
                                    core::SnapshotFormat::kV2, &injector));
  EXPECT_FALSE(core::save_cache_file(path, cache, repo(),
                                     core::SnapshotFormat::kV2, &injector));

  core::RestoreReport report;
  auto restored = core::restore_cache_file(path, repo(), config, &report);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(report.clean());
  EXPECT_LT(report.images_restored, cache.image_count());
  // records_lost counts image records the torn file still declares; the
  // tear may additionally swallow records whole, so <= not ==.
  EXPECT_LE(report.images_restored + report.records_lost, cache.image_count());
  EXPECT_EQ(restored.value().image_count(), report.images_restored);
}

TEST(SnapshotFiles, InjectedReadFaultSurfacesPreciseError) {
  const auto path = testing::TempDir() + "landlord_read_fault.txt";
  core::CacheConfig config;
  config.capacity = repo().total_bytes();
  core::Cache cache(repo(), config);
  ASSERT_TRUE(core::save_cache_file(path, cache, repo()));

  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kSnapshotRead, 1.0);
  fault::FaultInjector injector(plan);

  core::RestoreReport report;
  auto restored = core::restore_cache_file(path, repo(), config, &report, &injector);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.error().message.find("injected snapshot read failure"),
            std::string::npos);
  EXPECT_TRUE(report.corrupted);

  // Without the injector the same file restores cleanly.
  auto clean = core::restore_cache_file(path, repo(), config, &report);
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(report.clean());
}

// ---- Landlord::restore as the head-node restart path -----------------

TEST(LandlordRestore, RoundTripsThroughSnapshotStream) {
  core::CacheConfig config;
  config.capacity = repo().total_bytes();
  core::Landlord landlord(repo(), config);
  for (std::uint32_t base = 200; base < 240; base += 4) {
    std::vector<pkg::PackageId> request{pkg::package_id(base),
                                        pkg::package_id(base + 1)};
    (void)landlord.submit(spec::Specification::from_request(repo(), request));
  }
  const auto images_before = landlord.image_count();
  const auto bytes_before = landlord.total_bytes();
  ASSERT_GT(images_before, 0u);

  std::ostringstream out;
  core::save_cache(out, landlord.cache(), repo(), core::SnapshotFormat::kV2);

  core::Landlord fresh(repo(), config);
  std::istringstream in(out.str());
  core::RestoreReport report;
  auto restored = fresh.restore(in, &report);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), images_before);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(fresh.image_count(), images_before);
  EXPECT_EQ(fresh.total_bytes(), bytes_before);
  EXPECT_EQ(fresh.degraded().recovered_images, images_before);
}

}  // namespace
}  // namespace landlord
