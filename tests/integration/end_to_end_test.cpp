// Integration: the full pipeline — repository generation, specification
// inference from job artefacts, LANDLORD placement, Shrinkwrap
// materialisation — wired together the way the examples and benches use it.
#include <gtest/gtest.h>

#include <sstream>

#include "hep/profiles.hpp"
#include "landlord/landlord.hpp"
#include "pkg/manifest.hpp"
#include "pkg/synthetic.hpp"
#include "spec/inference.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = pkg::default_repository(42);
  return r;
}

TEST(EndToEnd, HepPipelineThroughLandlord) {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = 1400ULL * 1000 * 1000 * 1000;  // paper's 1.4 TB
  core::Landlord landlord(repo(), config);

  // Submit every benchmark app twice: second pass must be all hits.
  std::vector<spec::Specification> specs;
  for (const auto& app : hep::benchmark_apps()) {
    specs.push_back(hep::app_specification(repo(), app, 7));
  }
  for (const auto& spec : specs) {
    const auto placement = landlord.submit(spec);
    EXPECT_NE(placement.kind, core::RequestKind::kHit);
  }
  for (const auto& spec : specs) {
    const auto placement = landlord.submit(spec);
    EXPECT_EQ(placement.kind, core::RequestKind::kHit);
    EXPECT_DOUBLE_EQ(placement.prep_seconds, 0.0);
  }
  EXPECT_EQ(landlord.cache().counters().hits, 7u);
}

TEST(EndToEnd, InferredSpecsFromAllThreeSources) {
  // Build one job's requirements from a python script, a shell script
  // with module loads, and a previous job log — all referencing real
  // packages of the synthetic repository.
  const auto& r = repo();
  const auto& lib = r[pkg::package_id(200)];
  const auto& tool = r[pkg::package_id(400)];

  std::istringstream python_src("import numpy\nfrom ROOT import TFile\n");
  auto reqs = spec::scan_python_imports(python_src);

  std::istringstream shell_src("module load " + lib.name + "/" + lib.version + "\n");
  for (auto& req : spec::scan_module_loads(shell_src)) reqs.push_back(req);

  std::istringstream log_src("open /cvmfs/sft/" + tool.name + "/" + tool.version +
                             "/bin/tool\n");
  for (auto& req : spec::scan_job_log(log_src)) reqs.push_back(req);

  std::vector<std::string> unresolved;
  const auto spec = spec::infer_specification(r, reqs, "mixed", &unresolved);
  // numpy/ROOT are not in the synthetic repo -> unresolved; the module
  // load and the log path resolve exactly.
  EXPECT_EQ(unresolved.size(), 2u);
  EXPECT_GE(spec.size(), 2u);
  EXPECT_TRUE(spec.packages().contains(pkg::package_id(200)));
  EXPECT_TRUE(spec.packages().contains(pkg::package_id(400)));

  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = r.total_bytes();
  core::Landlord landlord(r, config);
  const auto placement = landlord.submit(spec);
  EXPECT_GT(placement.image_bytes, util::Bytes{0});
}

TEST(EndToEnd, ManifestRoundTripPreservesSimulationBehaviour) {
  // Serialise a synthetic repo to a manifest, re-load it, and check the
  // reloaded repository produces identical placements.
  pkg::SyntheticRepoParams params;
  params.total_packages = 400;
  auto original = pkg::generate_repository(params, 3);
  ASSERT_TRUE(original.ok());

  std::ostringstream out;
  pkg::write_manifest(original.value(), out);
  auto reloaded = pkg::parse_manifest_text(out.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;

  auto run = [](const pkg::Repository& r) {
    core::CacheConfig config;
    config.alpha = 0.75;
    config.capacity = r.total_bytes() / 2;
    core::Cache cache(r, config);
    for (std::uint32_t i = 0; i < 50; ++i) {
      std::vector<pkg::PackageId> request = {
          pkg::package_id((i * 13) % static_cast<std::uint32_t>(r.size())),
          pkg::package_id((i * 29) % static_cast<std::uint32_t>(r.size()))};
      (void)cache.request(spec::Specification::from_request(r, request));
    }
    return cache.counters();
  };

  const auto a = run(original.value());
  const auto b = run(reloaded.value());
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.written_bytes, b.written_bytes);
}

TEST(EndToEnd, BuilderAccountsForCrossImageDedup) {
  // Two overlapping HEP apps: building the second fetches less than its
  // full size because shared chunks are already in the local CAS.
  core::CacheConfig config;
  config.alpha = 0.0;  // separate images
  config.capacity = repo().total_bytes();
  core::Landlord landlord(repo(), config);

  const auto gen = hep::app_specification(repo(), hep::benchmark_apps()[1], 7);
  const auto sim = hep::app_specification(repo(), hep::benchmark_apps()[2], 7);
  (void)landlord.submit(gen);
  const auto& cas = landlord.builder().chunk_cache();
  const auto unique_after_first = cas.unique_bytes();
  (void)landlord.submit(sim);
  // CAS grew, but by less than sim's full footprint (shared base).
  EXPECT_GT(cas.unique_bytes(), unique_after_first);
  EXPECT_LT(cas.unique_bytes() - unique_after_first, sim.bytes(repo()));
}

}  // namespace
}  // namespace landlord
