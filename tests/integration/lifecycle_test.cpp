// Capstone integration: a head-node lifecycle across restarts and
// release drift — trace capture, cache persistence, restore, and
// continued operation must compose.
#include <gtest/gtest.h>

#include <sstream>

#include "landlord/persist.hpp"
#include "pkg/manifest.hpp"
#include "pkg/synthetic.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 900;
    auto result = pkg::generate_repository(params, 151);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

TEST(Lifecycle, DayOneDayTwoWithRestartAndDrift) {
  core::CacheConfig config;
  config.alpha = 0.8;
  // Roomy budget: the all-hits replay below presumes day one evicted
  // nothing.
  config.capacity = repo().total_bytes() * 4;

  sim::WorkloadConfig workload;
  workload.unique_jobs = 30;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(3));
  auto specs = generator.unique_specifications();

  // Day one: process the workload, capture the trace, snapshot the cache.
  sim::Trace trace;
  trace.specs = specs;
  core::Cache day_one(repo(), config);
  for (std::uint32_t i = 0; i < specs.size(); ++i) {
    (void)day_one.request(specs[i]);
    trace.stream.push_back(i);
  }
  ASSERT_EQ(day_one.counters().deletes, 0u);
  std::stringstream trace_file, cache_file;
  sim::write_trace(trace_file, trace, repo());
  core::save_cache(cache_file, day_one, repo());

  // Restart: restore the cache; replaying the captured trace must be
  // all hits (everything was admitted yesterday).
  auto restored = core::restore_cache(cache_file, repo(), config);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  auto reloaded_trace = sim::read_trace(trace_file, repo());
  ASSERT_TRUE(reloaded_trace.ok()) << reloaded_trace.error().message;
  for (auto index : reloaded_trace.value().stream) {
    EXPECT_EQ(restored.value().request(reloaded_trace.value().specs[index]).kind,
              core::RequestKind::kHit);
  }

  // Day two: a release cycle drifts the specs; the restored cache
  // absorbs the upgraded variants mostly by merging, not rebuilding.
  const auto before = restored.value().counters();
  for (auto& spec : specs) {
    spec = generator.evolved_specification(spec, 0.15);
    (void)restored.value().request(spec);
  }
  const auto after = restored.value().counters();
  const auto new_inserts = after.inserts - before.inserts;
  const auto new_merges = after.merges - before.merges;
  const auto new_hits = after.hits - before.hits;
  EXPECT_EQ(new_inserts + new_merges + new_hits,
            static_cast<std::uint64_t>(specs.size()));
  EXPECT_GT(new_merges + new_hits, new_inserts);
}

TEST(Lifecycle, ManifestTraceSnapshotAllPortable) {
  // The three durable artefacts — manifest, trace, cache snapshot — can
  // rebuild an equivalent deployment from text alone.
  std::stringstream manifest_file;
  pkg::write_manifest(repo(), manifest_file);
  auto repo2 = pkg::parse_manifest(manifest_file);
  ASSERT_TRUE(repo2.ok()) << repo2.error().message;

  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes();

  sim::WorkloadConfig workload;
  workload.unique_jobs = 12;
  workload.max_initial_selection = 8;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(9));
  const auto specs = generator.unique_specifications();

  core::Cache original(repo(), config);
  for (const auto& spec : specs) (void)original.request(spec);
  std::stringstream snapshot;
  core::save_cache(snapshot, original, repo());

  // Restore against the *reparsed* repository: package ids may differ,
  // keys must carry the state across.
  auto restored = core::restore_cache(snapshot, repo2.value(), config);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_EQ(restored.value().image_count(), original.image_count());
  EXPECT_EQ(restored.value().total_bytes(), original.total_bytes());
}

}  // namespace
}  // namespace landlord
