// Integration: qualitative claims of the paper's evaluation (§VI) hold on
// the reproduction at reduced replicate counts. These are the invariants
// EXPERIMENTS.md reports at full scale; here they gate regressions.
#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/sweep.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = pkg::default_repository(42);
  return r;
}

sim::SweepConfig sweep_base() {
  sim::SweepConfig config;
  config.alphas = {0.40, 0.60, 0.75, 0.90, 1.00};
  config.replicates = 3;
  config.base.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
  config.base.workload.unique_jobs = 500;
  config.base.workload.repetitions = 5;
  config.base.seed = 4242;
  return config;
}

const std::vector<sim::SweepPoint>& default_sweep() {
  static const auto points = run_sweep(repo(), sweep_base());
  return points;
}

// Fig. 4a: at low alpha inserts/deletes dominate and track each other;
// merges grow with alpha; at alpha=1 hits jump and merges collapse.
TEST(PaperShapes, Fig4aOperationMix) {
  const auto& points = default_sweep();
  const auto& low = points[0];    // 0.40
  const auto& mid = points[2];    // 0.75
  const auto& high = points[3];   // 0.90
  const auto& one = points[4];    // 1.00

  EXPECT_GT(low.inserts, low.merges);
  EXPECT_NEAR(low.inserts, low.deletes, low.inserts * 0.25);  // lockstep
  EXPECT_GT(mid.merges, low.merges);
  EXPECT_GT(high.merges, low.merges);
  EXPECT_LT(high.inserts, low.inserts);
  // Alpha = 1: single image — hits jump, merges collapse vs 0.90.
  EXPECT_GT(one.hits, high.hits);
  EXPECT_LT(one.merges, high.merges);
  EXPECT_LE(one.inserts, 2.0);
}

// Fig. 4b: unique data grows with alpha; total >> unique at low alpha;
// at alpha=1 they coincide.
TEST(PaperShapes, Fig4bDuplication) {
  const auto& points = default_sweep();
  EXPECT_GT(points[0].total_gb, points[0].unique_gb * 3);
  EXPECT_GT(points[4].unique_gb, points[0].unique_gb);
  EXPECT_NEAR(points[4].total_gb, points[4].unique_gb,
              points[4].unique_gb * 0.01);
}

// Fig. 4c: at low alpha actual writes are at or slightly below requested
// (reuse); in the upper range the merge rewrites push actual above
// requested.
TEST(PaperShapes, Fig4cWriteAmplification) {
  const auto& points = default_sweep();
  EXPECT_LE(points[0].written_tb, points[0].requested_tb * 1.05);
  EXPECT_GT(points[3].written_tb, points[0].written_tb);
  EXPECT_GT(points[3].written_tb, points[3].requested_tb);
}

// Fig. 8: container efficiency decreases in alpha, cache efficiency
// increases; the two cross somewhere in the operational zone.
TEST(PaperShapes, Fig8EfficiencyTradeoff) {
  const auto& points = default_sweep();
  EXPECT_GT(points[0].container_efficiency, 90.0);
  EXPECT_LT(points[4].container_efficiency, points[0].container_efficiency);
  EXPECT_GT(points[4].cache_efficiency, points[0].cache_efficiency);
  EXPECT_NEAR(points[4].cache_efficiency, 100.0, 1.0);
}

// Fig. 7: the uniform-random workload gains little from merging in the
// operational range — merges stay far below the dependency workload's.
TEST(PaperShapes, Fig7RandomWorkloadResistsMerging) {
  auto config = sweep_base();
  config.alphas = {0.75};
  config.base.workload.unique_jobs = 100;

  const auto deps = run_sweep(repo(), config);
  config.base.workload.scheme = sim::ImageScheme::kUniformRandom;
  const auto random = run_sweep(repo(), config);

  ASSERT_EQ(deps.size(), 1u);
  ASSERT_EQ(random.size(), 1u);
  EXPECT_LT(random[0].merges, deps[0].merges / 2);
  // Random images keep near-perfect container efficiency (no merging
  // means nothing unrequested is shipped).
  EXPECT_GT(random[0].container_efficiency, deps[0].container_efficiency);
}

// Fig. 6a/6b: larger cache -> lower cache efficiency (more duplication
// retained) at moderate alpha.
TEST(PaperShapes, Fig6CacheSizeInverseToEfficiency) {
  auto config = sweep_base();
  config.alphas = {0.75};
  config.base.workload.unique_jobs = 120;

  config.base.cache.capacity = repo().total_bytes();  // 1x repo
  const auto small = run_sweep(repo(), config);
  config.base.cache.capacity = repo().total_bytes() * 5;  // 5x repo
  const auto large = run_sweep(repo(), config);

  EXPECT_GT(small[0].cache_efficiency, large[0].cache_efficiency);
  // "A larger cache also allows for more opportunities to merge images,
  // leading to decreased container efficiency" (§VI).
  EXPECT_LE(large[0].container_efficiency,
            small[0].container_efficiency + 5.0);
}

// Fig. 6c/6d: 500 vs 1000 unique jobs behave nearly identically (steady
// state), while 100 jobs have not converged. At reduced scale we assert
// the weaker, robust half: doubling jobs at steady state moves the
// efficiencies by little.
TEST(PaperShapes, Fig6SteadyStateInJobCount) {
  auto config = sweep_base();
  config.alphas = {0.75};

  config.base.workload.unique_jobs = 300;
  const auto a = run_sweep(repo(), config);
  config.base.workload.unique_jobs = 600;
  const auto b = run_sweep(repo(), config);

  EXPECT_NEAR(a[0].cache_efficiency, b[0].cache_efficiency, 12.0);
  EXPECT_NEAR(a[0].container_efficiency, b[0].container_efficiency, 12.0);
}

}  // namespace
}  // namespace landlord
