// Property-based checks: invariants of Algorithm 1 under random request
// streams over the synthetic repository, across the alpha range.
#include <gtest/gtest.h>

#include <tuple>

#include "landlord/cache.hpp"
#include "landlord/sharded.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& shared_repo() {
  static const pkg::Repository repo = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 1200;
    auto result = pkg::generate_repository(params, 77);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return repo;
}

class CacheInvariantTest
    : public testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(CacheInvariantTest, InvariantsHoldThroughoutStream) {
  const auto [alpha, seed] = GetParam();
  const auto& repo = shared_repo();

  CacheConfig config;
  config.alpha = alpha;
  config.capacity = repo.total_bytes() / 4;
  Cache cache(repo, config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 60;
  workload.repetitions = 3;
  workload.max_initial_selection = 20;
  sim::WorkloadGenerator generator(repo, workload,
                                   util::Rng(static_cast<std::uint64_t>(seed)));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    const auto outcome = cache.request(spec);

    // The returned image exists and satisfies the request.
    const auto image = cache.find(outcome.image);
    ASSERT_TRUE(image.has_value());
    EXPECT_TRUE(spec.satisfied_by(image->contents));
    EXPECT_EQ(image->bytes, outcome.image_bytes);
    EXPECT_EQ(image->bytes, repo.bytes_of(image->contents.bits()));

    // Accounting identities.
    const auto& c = cache.counters();
    EXPECT_EQ(c.requests, c.hits + c.merges + c.inserts);
    EXPECT_LE(cache.unique_bytes(), cache.total_bytes());

    // total_bytes equals the sum over images (recomputed).
    util::Bytes sum = 0;
    std::size_t images = 0;
    cache.for_each_image([&](const Image& img) {
      sum += img.bytes;
      ++images;
    });
    EXPECT_EQ(sum, cache.total_bytes());
    EXPECT_EQ(images, cache.image_count());

    // Capacity respected unless a single image exceeds it.
    if (cache.image_count() > 1) {
      EXPECT_LE(cache.total_bytes(),
                config.capacity + repo.total_bytes());  // loose sanity
    }
  }

  // Post-stream: capacity holds (single-image exception aside).
  if (cache.image_count() > 1) {
    EXPECT_LE(cache.total_bytes(), config.capacity);
  }
  // Hits never write; written >= inserted data.
  EXPECT_GE(cache.counters().written_bytes, util::Bytes{0});
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBySeed, CacheInvariantTest,
    testing::Combine(testing::Values(0.0, 0.3, 0.6, 0.8, 0.95, 1.0),
                     testing::Values(1, 2)));

TEST(CacheProperty, AlphaZeroImageCountEqualsDistinctSpecsUntilEviction) {
  const auto& repo = shared_repo();
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = repo.total_bytes() * 10;  // no eviction
  Cache cache(repo, config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.repetitions = 2;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(3));
  const auto specs = generator.unique_specifications();

  for (int round = 0; round < 2; ++round) {
    for (const auto& spec : specs) (void)cache.request(spec);
  }
  // Second round is all hits; image count <= unique specs (subset specs
  // may share images).
  EXPECT_LE(cache.image_count(), specs.size());
  EXPECT_EQ(cache.counters().merges, 0u);
  EXPECT_GE(cache.counters().hits, specs.size());
}

TEST(CacheProperty, MonotoneAlphaReducesInsertsOnSameStream) {
  const auto& repo = shared_repo();
  sim::WorkloadConfig workload;
  workload.unique_jobs = 50;
  workload.repetitions = 3;
  workload.max_initial_selection = 15;

  auto inserts_at = [&](double alpha) {
    CacheConfig config;
    config.alpha = alpha;
    config.capacity = repo.total_bytes() / 4;
    Cache cache(repo, config);
    sim::WorkloadGenerator generator(repo, workload, util::Rng(11));
    const auto specs = generator.unique_specifications();
    const auto stream = generator.request_stream();
    for (auto index : stream) (void)cache.request(specs[index]);
    return cache.counters().inserts;
  };

  // Not strictly monotone in theory, but over this stream the trend must
  // hold between far-apart alphas.
  EXPECT_GT(inserts_at(0.0), inserts_at(0.9));
  EXPECT_GE(inserts_at(0.9), inserts_at(1.0));
}

TEST(CacheProperty, AlphaOneConvergesToSingleImage) {
  const auto& repo = shared_repo();
  CacheConfig config;
  config.alpha = 1.0;
  config.capacity = repo.total_bytes() * 10;
  Cache cache(repo, config);
  sim::WorkloadConfig workload;
  workload.unique_jobs = 30;
  workload.repetitions = 1;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(13));
  for (const auto& spec : generator.unique_specifications()) {
    (void)cache.request(spec);
  }
  EXPECT_EQ(cache.image_count(), 1u);
  EXPECT_DOUBLE_EQ(cache.cache_efficiency(), 1.0);
}

TEST(CacheProperty, EfficiencyBoundsHoldUnderRandomConfigs) {
  // unique_bytes <= total_bytes and cache_efficiency in (0, 1] must hold
  // for every (alpha, capacity, policy) draw, on both the sequential and
  // the sharded cache (which shares the atomic ledger arithmetic).
  const auto& repo = shared_repo();
  util::Rng rng(2024);
  constexpr MergePolicy kPolicies[] = {MergePolicy::kBestFit, MergePolicy::kFirstFit,
                                       MergePolicy::kMinHashLsh};

  for (std::uint64_t draw = 0; draw < 6; ++draw) {
    CacheConfig config;
    config.alpha = rng.uniform_double();
    config.policy = kPolicies[rng.uniform(3)];
    // Capacity between 10% and 110% of the repository footprint.
    config.capacity = repo.total_bytes() / 10 +
                      static_cast<util::Bytes>(rng.uniform_double() *
                                               static_cast<double>(repo.total_bytes()));
    config.shards = static_cast<std::uint32_t>(rng.uniform(1, 8));

    sim::WorkloadConfig workload;
    workload.unique_jobs = 40;
    workload.repetitions = 2;
    workload.max_initial_selection = 15;
    sim::WorkloadGenerator generator(repo, workload, rng.split(100 + draw));
    const auto specs = generator.unique_specifications();
    const auto stream = generator.request_stream();

    Cache sequential(repo, config);
    ShardedCache sharded(repo, config);
    for (std::uint32_t index : stream) {
      (void)sequential.request(specs[index]);
      (void)sharded.request(specs[index]);

      EXPECT_LE(sequential.unique_bytes(), sequential.total_bytes());
      EXPECT_LE(sharded.unique_bytes(), sharded.total_bytes());
      for (const double efficiency :
           {sequential.cache_efficiency(), sharded.cache_efficiency()}) {
        EXPECT_GT(efficiency, 0.0) << "alpha=" << config.alpha;
        EXPECT_LE(efficiency, 1.0) << "alpha=" << config.alpha;
      }
    }
    // Single-threaded replay: the two caches must agree on the bounds'
    // inputs exactly, whatever the shard count drawn.
    EXPECT_EQ(sequential.total_bytes(), sharded.total_bytes());
    EXPECT_EQ(sequential.unique_bytes(), sharded.unique_bytes());
  }
}

TEST(CacheProperty, PoliciesAgreeOnHitOutcomes) {
  // Hits are policy-independent (the superset scan ignores policy); run
  // the same stream under the three policies and compare hit counts of
  // the pure-LRU regime (alpha = 0, merging disabled) — they must agree
  // exactly.
  const auto& repo = shared_repo();
  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.repetitions = 3;
  workload.max_initial_selection = 12;

  auto hits_with = [&](MergePolicy policy) {
    CacheConfig config;
    config.alpha = 0.0;
    config.policy = policy;
    config.capacity = repo.total_bytes() / 3;
    Cache cache(repo, config);
    sim::WorkloadGenerator generator(repo, workload, util::Rng(17));
    const auto specs = generator.unique_specifications();
    for (auto index : generator.request_stream()) (void)cache.request(specs[index]);
    return cache.counters().hits;
  };

  const auto best = hits_with(MergePolicy::kBestFit);
  EXPECT_EQ(best, hits_with(MergePolicy::kFirstFit));
  EXPECT_EQ(best, hits_with(MergePolicy::kMinHashLsh));
}

}  // namespace
}  // namespace landlord::core
