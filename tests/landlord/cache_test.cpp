#include "landlord/cache.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace landlord::core {
namespace {

using pkg::package_id;

/// Flat repository: N independent 1-byte... rather, fixed-size packages
/// with no dependencies, so spec contents are exactly what tests insert.
pkg::Repository flat_repo(std::uint32_t n, util::Bytes each = 10) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", each, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

spec::Specification make_spec(const pkg::Repository& repo,
                              std::initializer_list<std::uint32_t> ids) {
  spec::PackageSet set(repo.size());
  for (auto i : ids) set.insert(package_id(i));
  return spec::Specification(std::move(set));
}

CacheConfig config(double alpha, util::Bytes capacity = 1'000'000) {
  CacheConfig c;
  c.alpha = alpha;
  c.capacity = capacity;
  return c;
}

TEST(Cache, FirstRequestInserts) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.5));
  const auto outcome = cache.request(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(outcome.kind, RequestKind::kInsert);
  EXPECT_EQ(cache.image_count(), 1u);
  EXPECT_EQ(cache.total_bytes(), util::Bytes{30});
  EXPECT_EQ(cache.counters().inserts, 1u);
}

TEST(Cache, IdenticalRequestHits) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));  // alpha 0: no merging ever
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  const auto outcome = cache.request(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.image_count(), 1u);
}

TEST(Cache, SubsetRequestHitsExistingImage) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4}));
  const auto outcome = cache.request(make_spec(repo, {2, 3}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(outcome.image_bytes, util::Bytes{40});  // serves the big image
}

TEST(Cache, SupersetRequestDoesNotHit) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2}));
  const auto outcome = cache.request(make_spec(repo, {1, 2, 3}));
  EXPECT_NE(outcome.kind, RequestKind::kHit);
}

TEST(Cache, HitPrefersSmallestSatisfyingImage) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4, 5, 6}));  // 60 bytes
  (void)cache.request(make_spec(repo, {1, 2, 3}));           // hits big image
  // Insert a smaller superset of {1,2}: the set {1,2,9} is not a superset
  // of {1,2,3}, so it inserts.
  (void)cache.request(make_spec(repo, {1, 2, 9}));
  const auto outcome = cache.request(make_spec(repo, {1, 2}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(outcome.image_bytes, util::Bytes{30});  // the smaller one
}

TEST(Cache, AlphaZeroNeverMerges) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  const auto outcome = cache.request(make_spec(repo, {1, 2, 4}));
  EXPECT_EQ(outcome.kind, RequestKind::kInsert);
  EXPECT_EQ(cache.counters().merges, 0u);
  EXPECT_EQ(cache.image_count(), 2u);
}

TEST(Cache, CloseSpecsMergeUnderHighAlpha) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  // d({1,2,3},{1,2,4}) = 1 - 2/4 = 0.5 < 0.9 -> merge.
  const auto outcome = cache.request(make_spec(repo, {1, 2, 4}));
  EXPECT_EQ(outcome.kind, RequestKind::kMerge);
  EXPECT_EQ(cache.image_count(), 1u);
  EXPECT_EQ(outcome.image_bytes, util::Bytes{40});  // {1,2,3,4}
  EXPECT_EQ(cache.counters().merges, 1u);
}

TEST(Cache, DistanceAtAlphaDoesNotMerge) {
  const auto repo = flat_repo(100);
  // d({1,2},{1,3}) = 1 - 1/3 = 0.6667. alpha exactly there: strict <.
  Cache cache(repo, config(2.0 / 3.0));
  (void)cache.request(make_spec(repo, {1, 2}));
  const auto outcome = cache.request(make_spec(repo, {1, 3}));
  EXPECT_EQ(outcome.kind, RequestKind::kInsert);
}

TEST(Cache, MergedImageServesBothSpecs) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  (void)cache.request(make_spec(repo, {1, 2, 4}));
  // Both originals now hit the merged image.
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 3})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 4})).kind, RequestKind::kHit);
}

TEST(Cache, BestFitMergesIntoClosestImage) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.95));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4}));      // A
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));  // B (disjoint from A)
  // Closest to A (d = 1 - 3/5 = 0.4); to B d = 1.0 but 1.0 < 0.95 false.
  const auto outcome = cache.request(make_spec(repo, {1, 2, 3, 5}));
  EXPECT_EQ(outcome.kind, RequestKind::kMerge);
  // Merged image is A ∪ {5} (5 packages, 50 bytes).
  EXPECT_EQ(outcome.image_bytes, util::Bytes{50});
}

TEST(Cache, AlphaOneMergesEverythingMergeable) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(1.0));
  (void)cache.request(make_spec(repo, {1}));
  (void)cache.request(make_spec(repo, {50}));
  (void)cache.request(make_spec(repo, {99}));
  EXPECT_EQ(cache.image_count(), 1u);
  EXPECT_EQ(cache.counters().merges, 2u);
}

TEST(Cache, LruEvictionWhenOverCapacity) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0, 50));  // capacity 5 packages
  (void)cache.request(make_spec(repo, {1, 2, 3}));    // 30 bytes
  (void)cache.request(make_spec(repo, {10, 11, 12})); // 30 bytes -> evict first
  EXPECT_EQ(cache.counters().deletes, 1u);
  EXPECT_EQ(cache.image_count(), 1u);
  // The first image is gone: requesting it again re-inserts.
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 3})).kind, RequestKind::kInsert);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0, 70));
  (void)cache.request(make_spec(repo, {1, 2, 3}));     // A
  (void)cache.request(make_spec(repo, {10, 11, 12}));  // B
  (void)cache.request(make_spec(repo, {1, 2, 3}));     // touch A
  (void)cache.request(make_spec(repo, {20, 21, 22}));  // C -> evicts B
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 3})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {10, 11, 12})).kind,
            RequestKind::kInsert);
}

TEST(Cache, SingleOversizedImageIsKept) {
  // An image bigger than capacity must not evict itself (alpha = 1
  // all-purpose image semantics).
  const auto repo = flat_repo(100);
  Cache cache(repo, config(1.0, 25));
  (void)cache.request(make_spec(repo, {1, 2, 3}));  // 30 > 25
  EXPECT_EQ(cache.image_count(), 1u);
  EXPECT_EQ(cache.counters().deletes, 0u);
}

TEST(Cache, WrittenBytesChargedOnInsertAndMergeNotHit) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  (void)cache.request(make_spec(repo, {1, 2, 3}));  // +30
  EXPECT_EQ(cache.counters().written_bytes, util::Bytes{30});
  (void)cache.request(make_spec(repo, {1, 2, 3}));  // hit: +0
  EXPECT_EQ(cache.counters().written_bytes, util::Bytes{30});
  (void)cache.request(make_spec(repo, {1, 2, 4}));  // merge: whole image +40
  EXPECT_EQ(cache.counters().written_bytes, util::Bytes{70});
}

TEST(Cache, RequestedBytesAccumulatePerRequest) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {1, 2}));
  EXPECT_EQ(cache.counters().requested_bytes, util::Bytes{40});
}

TEST(Cache, ContainerEfficiencyPerfectWithoutMerging) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {3, 4, 5}));
  EXPECT_DOUBLE_EQ(cache.counters().container_efficiency(), 1.0);
}

TEST(Cache, ContainerEfficiencyDegradesWithMerging) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  (void)cache.request(make_spec(repo, {1, 2, 3}));  // exact: 1.0
  (void)cache.request(make_spec(repo, {1, 2, 4}));  // merged into 4 pkgs: 0.75
  EXPECT_NEAR(cache.counters().container_efficiency(), (1.0 + 0.75) / 2, 1e-12);
}

TEST(Cache, UniqueVsTotalBytes) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  (void)cache.request(make_spec(repo, {2, 3, 4}));
  EXPECT_EQ(cache.total_bytes(), util::Bytes{60});
  EXPECT_EQ(cache.unique_bytes(), util::Bytes{40});  // {1,2,3,4}
  EXPECT_NEAR(cache.cache_efficiency(), 40.0 / 60.0, 1e-12);
}

TEST(Cache, EmptyCacheEfficiencyIsOne) {
  const auto repo = flat_repo(10);
  Cache cache(repo, config(0.5));
  EXPECT_DOUBLE_EQ(cache.cache_efficiency(), 1.0);
  EXPECT_EQ(cache.unique_bytes(), util::Bytes{0});
}

TEST(Cache, ConflictingConstraintsBlockMergeAndInsert) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  auto a = make_spec(repo, {1, 2, 3});
  a.add_constraint({"python", spec::ConstraintOp::kEq, "3.8"});
  auto b = make_spec(repo, {1, 2, 4});
  b.add_constraint({"python", spec::ConstraintOp::kEq, "3.9"});
  (void)cache.request(a);
  const auto outcome = cache.request(b);
  EXPECT_EQ(outcome.kind, RequestKind::kInsert);
  EXPECT_EQ(cache.counters().conflict_rejections, 1u);
  EXPECT_EQ(cache.image_count(), 2u);
}

TEST(Cache, CompatibleConstraintsStillMerge) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  auto a = make_spec(repo, {1, 2, 3});
  a.add_constraint({"python", spec::ConstraintOp::kGe, "3.0"});
  auto b = make_spec(repo, {1, 2, 4});
  b.add_constraint({"python", spec::ConstraintOp::kEq, "3.8"});
  (void)cache.request(a);
  EXPECT_EQ(cache.request(b).kind, RequestKind::kMerge);
}

TEST(Cache, MergedImageAccumulatesConstraints) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  auto a = make_spec(repo, {1, 2, 3});
  a.add_constraint({"gcc", spec::ConstraintOp::kGe, "9"});
  auto b = make_spec(repo, {1, 2, 4});
  b.add_constraint({"gcc", spec::ConstraintOp::kLt, "10"});
  (void)cache.request(a);
  (void)cache.request(b);
  // Now a spec needing gcc==11 conflicts with the accumulated [9,10).
  auto c = make_spec(repo, {1, 2, 5});
  c.add_constraint({"gcc", spec::ConstraintOp::kEq, "11"});
  EXPECT_EQ(cache.request(c).kind, RequestKind::kInsert);
}

TEST(Cache, TimeSeriesRecordsWhenEnabled) {
  const auto repo = flat_repo(100);
  auto cfg = config(0.9);
  cfg.record_time_series = true;
  Cache cache(repo, cfg);
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {1, 2}));
  const auto& samples = cache.time_series().samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].kind, RequestKind::kInsert);
  EXPECT_EQ(samples[1].kind, RequestKind::kHit);
  EXPECT_EQ(samples[1].hits, 1u);
  EXPECT_EQ(samples[1].cached_bytes, util::Bytes{20});
  EXPECT_EQ(samples[1].image_count, 1u);
}

TEST(Cache, TimeSeriesEmptyWhenDisabled) {
  const auto repo = flat_repo(10);
  Cache cache(repo, config(0.5));
  (void)cache.request(make_spec(repo, {1}));
  EXPECT_TRUE(cache.time_series().empty());
}

TEST(Cache, FindReturnsImageAndNulloptForEvicted) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0, 30));
  const auto first = cache.request(make_spec(repo, {1, 2, 3}));
  ASSERT_TRUE(cache.find(first.image).has_value());
  EXPECT_EQ(cache.find(first.image)->bytes, util::Bytes{30});
  (void)cache.request(make_spec(repo, {4, 5, 6}));  // evicts first
  EXPECT_FALSE(cache.find(first.image).has_value());
}

TEST(Cache, MergeKeepsImageIdStable) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.9));
  const auto first = cache.request(make_spec(repo, {1, 2, 3}));
  const auto merged = cache.request(make_spec(repo, {1, 2, 4}));
  EXPECT_EQ(merged.image, first.image);
  EXPECT_EQ(cache.find(first.image)->merge_count, 1u);
}

TEST(Cache, MinHashPolicyAgreesWithExactOnClearCases) {
  const auto repo = flat_repo(200);
  auto cfg = config(0.9);
  cfg.policy = MergePolicy::kMinHashLsh;
  cfg.lsh_bands = 32;
  Cache cache(repo, cfg);
  // Nearly identical specs (63/64 overlap): LSH must surface the
  // candidate and merge.
  spec::PackageSet a(repo.size()), b(repo.size());
  for (std::uint32_t i = 0; i < 64; ++i) a.insert(package_id(i));
  for (std::uint32_t i = 1; i < 65; ++i) b.insert(package_id(i));
  (void)cache.request(spec::Specification(a));
  EXPECT_EQ(cache.request(spec::Specification(b)).kind, RequestKind::kMerge);
}

TEST(Cache, FirstFitPolicyStillMerges) {
  const auto repo = flat_repo(100);
  auto cfg = config(0.9);
  cfg.policy = MergePolicy::kFirstFit;
  Cache cache(repo, cfg);
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 4})).kind, RequestKind::kMerge);
}

TEST(Cache, ForEachImageVisitsAll) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.0));
  (void)cache.request(make_spec(repo, {1}));
  (void)cache.request(make_spec(repo, {2}));
  std::size_t count = 0;
  util::Bytes bytes = 0;
  cache.for_each_image([&](const Image& image) {
    ++count;
    bytes += image.bytes;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(bytes, cache.total_bytes());
}

TEST(Cache, EmptySpecHitsAnyExistingImage) {
  const auto repo = flat_repo(10);
  Cache cache(repo, config(0.5));
  (void)cache.request(make_spec(repo, {1}));
  EXPECT_EQ(cache.request(make_spec(repo, {})).kind, RequestKind::kHit);
}

TEST(Cache, MergedImageConstraintsStayBoundedUnderRepeatedMerges) {
  // Regression: the merge path used to append every folded-in spec's
  // constraints verbatim, so a hot image merging N specs that all carry
  // {python == 3.8} accumulated N copies — linear bloat that slowed
  // every later compatibility check. Dedup keeps it at the distinct set.
  const auto repo = flat_repo(100);
  Cache cache(repo, config(0.95));

  const spec::VersionConstraint python{"python", spec::ConstraintOp::kEq, "3.8"};
  const spec::VersionConstraint gcc{"gcc", spec::ConstraintOp::kGe, "12"};

  auto first = make_spec(repo, {1, 2, 3});
  first.add_constraint(python);
  const auto inserted = cache.request(first);
  ASSERT_EQ(inserted.kind, RequestKind::kInsert);

  std::uint64_t merges = 0;
  for (std::uint32_t k = 4; k < 24; ++k) {
    auto next = make_spec(repo, {1, 2, k});
    next.add_constraint(python);  // same constraint every time
    if (k % 2 == 0) next.add_constraint(gcc);
    const auto outcome = cache.request(next);
    if (outcome.kind != RequestKind::kMerge) continue;
    ++merges;
    const auto image = cache.find(outcome.image);
    ASSERT_TRUE(image.has_value());
    // Bounded by the distinct constraints seen, never by merge count.
    EXPECT_LE(image->constraints.size(), 2u);
  }
  ASSERT_GT(merges, 5u);  // the loop actually exercised the merge arm
  const auto image = cache.find(inserted.image);
  ASSERT_TRUE(image.has_value());
  ASSERT_EQ(image->constraints.size(), 2u);
  EXPECT_EQ(image->constraints[0], python);  // first-occurrence order kept
  EXPECT_EQ(image->constraints[1], gcc);
}

TEST(Cache, IncrementalUniqueBytesLedgerMatchesRecomputeOracle) {
  // unique_bytes() with time-series recording on is served from the
  // incremental union ledger (O(1)); it must equal the brute-force union
  // recompute after every mutation kind — insert, merge, split, and
  // budget eviction.
  const auto repo = flat_repo(120);
  auto cfg = config(0.9, 400);  // small budget: forces evictions
  cfg.record_time_series = true;
  cfg.enable_split = true;
  cfg.split_utilization = 0.4;
  Cache cache(repo, cfg);

  const auto oracle = [&] {
    util::DynamicBitset all(repo.size());
    cache.for_each_image(
        [&](const Image& image) { all |= image.contents.bits(); });
    return repo.bytes_of(all);
  };

  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    spec::PackageSet set(repo.size());
    const auto picks = rng.sample_without_replacement(
        120, static_cast<std::uint32_t>(1 + i % 8));
    for (auto p : picks) set.insert(package_id(p));
    (void)cache.request(spec::Specification(std::move(set)));
    ASSERT_EQ(cache.unique_bytes(), oracle()) << "after request " << i;
  }
  EXPECT_GT(cache.counters().deletes, 0u);  // evictions were exercised
}

}  // namespace
}  // namespace landlord::core
