#include "landlord/concurrent.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <sstream>
#include <thread>

#include "landlord/persist.hpp"
#include "landlord/sharded.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 141);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

CacheConfig config(double alpha = 0.8) {
  CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes() / 2;
  return c;
}

TEST(ConcurrentCache, SingleThreadedBehavesLikeCache) {
  ConcurrentCache concurrent(repo(), config());
  Cache plain(repo(), config());

  sim::WorkloadConfig workload;
  workload.unique_jobs = 30;
  workload.repetitions = 2;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(3));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  for (auto index : stream) {
    const auto a = concurrent.request(specs[index]);
    const auto b = plain.request(specs[index]);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.image_bytes, b.image_bytes);
  }
  EXPECT_EQ(concurrent.counters().hits, plain.counters().hits);
  EXPECT_EQ(concurrent.total_bytes(), plain.total_bytes());
}

TEST(ConcurrentCache, ParallelSubmissionsConserveAccounting) {
  ConcurrentCache cache(repo(), config());

  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(5));
  const auto specs = generator.unique_specifications();

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> satisfied{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(static_cast<std::uint64_t>(t) + 100);
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const auto& spec = specs[rng.uniform(specs.size())];
          const auto outcome = cache.request(spec);
          const auto image = cache.find(outcome.image);
          // The image can be evicted by another thread between request
          // and find; when it is still resident it must satisfy the spec.
          if (image.has_value() && spec.satisfied_by(image->contents)) {
            ++satisfied;
          }
        }
      });
    }
  }

  const auto counters = cache.counters();
  EXPECT_EQ(counters.requests,
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(counters.requests, counters.hits + counters.merges + counters.inserts);
  // The vast majority of lookups observe their image resident.
  EXPECT_GT(satisfied.load(), kThreads * kRequestsPerThread * 9 / 10);
  EXPECT_LE(cache.unique_bytes(), cache.total_bytes());
}

TEST(ConcurrentCache, WithExclusiveSeesConsistentState) {
  ConcurrentCache cache(repo(), config());
  sim::WorkloadConfig workload;
  workload.unique_jobs = 10;
  workload.max_initial_selection = 6;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(7));
  for (const auto& spec : generator.unique_specifications()) {
    (void)cache.request(spec);
  }
  const auto total = cache.with_exclusive([](Cache& inner) {
    util::Bytes sum = 0;
    inner.for_each_image([&](const Image& image) { sum += image.bytes; });
    EXPECT_EQ(sum, inner.total_bytes());
    return sum;
  });
  EXPECT_EQ(total, cache.total_bytes());
}

TEST(ConcurrentCache, PersistRoundTripUnderConcurrentSubmission) {
  // A head node checkpoints its cache while submissions keep arriving.
  // with_exclusive holds the cache mutex across the whole save, so every
  // snapshot taken mid-storm must parse, restore, and satisfy the
  // accounting identities — a torn write would fail the restore.
  ConcurrentCache cache(repo(), config(0.6));

  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(19));
  const auto specs = generator.unique_specifications();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 60;
  std::barrier start(kThreads + 1);
  std::vector<std::jthread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 500);
      start.arrive_and_wait();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        (void)cache.request(specs[rng.uniform(specs.size())]);
      }
    });
  }

  start.arrive_and_wait();
  int snapshots = 0;
  for (int round = 0; round < 20; ++round) {
    std::stringstream out;
    const auto saved_bytes = cache.with_exclusive([&](Cache& inner) {
      save_cache(out, inner, repo());
      return inner.total_bytes();
    });

    auto restored = restore_cache(out, repo(), config(0.6));
    ASSERT_TRUE(restored.ok()) << restored.error().message;
    EXPECT_EQ(restored.value().total_bytes(), saved_bytes);
    util::Bytes sum = 0;
    restored.value().for_each_image([&](const Image& image) { sum += image.bytes; });
    EXPECT_EQ(sum, restored.value().total_bytes());
    ++snapshots;
    std::this_thread::yield();
  }
  submitters.clear();
  EXPECT_EQ(snapshots, 20);
}

TEST(ShardedCachePersist, SnapshotMidStormRestoresConsistently) {
  // The sharded analogue: snapshot_images() takes every shard lock, so a
  // save during a multi-threaded storm is a true point-in-time state.
  CacheConfig cfg = config(0.7);
  cfg.shards = 4;
  ShardedCache cache(repo(), cfg);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(23));
  const auto specs = generator.unique_specifications();

  constexpr int kThreads = 4;
  std::barrier start(kThreads + 1);
  std::vector<std::jthread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 900);
      start.arrive_and_wait();
      for (int i = 0; i < 60; ++i) {
        (void)cache.request(specs[rng.uniform(specs.size())]);
      }
    });
  }

  start.arrive_and_wait();
  for (int round = 0; round < 20; ++round) {
    std::stringstream out;
    save_cache(out, cache, repo());

    ShardedCache restored(repo(), cfg);
    const auto adopted = restore_cache_into(out, repo(), restored);
    ASSERT_TRUE(adopted.ok()) << adopted.error().message;
    // A mid-storm snapshot can be transiently over budget; the restore
    // trims it, so adopted >= resident.
    EXPECT_GE(adopted.value(), restored.image_count());
    util::Bytes sum = 0;
    for (const auto& image : restored.snapshot_images()) sum += image.bytes;
    EXPECT_EQ(sum, restored.total_bytes());
    EXPECT_LE(restored.unique_bytes(), restored.total_bytes());
    std::this_thread::yield();
  }
  submitters.clear();
}

}  // namespace
}  // namespace landlord::core
