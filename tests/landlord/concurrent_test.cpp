#include "landlord/concurrent.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 141);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

CacheConfig config(double alpha = 0.8) {
  CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes() / 2;
  return c;
}

TEST(ConcurrentCache, SingleThreadedBehavesLikeCache) {
  ConcurrentCache concurrent(repo(), config());
  Cache plain(repo(), config());

  sim::WorkloadConfig workload;
  workload.unique_jobs = 30;
  workload.repetitions = 2;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(3));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  for (auto index : stream) {
    const auto a = concurrent.request(specs[index]);
    const auto b = plain.request(specs[index]);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.image_bytes, b.image_bytes);
  }
  EXPECT_EQ(concurrent.counters().hits, plain.counters().hits);
  EXPECT_EQ(concurrent.total_bytes(), plain.total_bytes());
}

TEST(ConcurrentCache, ParallelSubmissionsConserveAccounting) {
  ConcurrentCache cache(repo(), config());

  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(5));
  const auto specs = generator.unique_specifications();

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> satisfied{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(static_cast<std::uint64_t>(t) + 100);
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const auto& spec = specs[rng.uniform(specs.size())];
          const auto outcome = cache.request(spec);
          const auto image = cache.find(outcome.image);
          // The image can be evicted by another thread between request
          // and find; when it is still resident it must satisfy the spec.
          if (image.has_value() && spec.satisfied_by(image->contents)) {
            ++satisfied;
          }
        }
      });
    }
  }

  const auto counters = cache.counters();
  EXPECT_EQ(counters.requests,
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(counters.requests, counters.hits + counters.merges + counters.inserts);
  // The vast majority of lookups observe their image resident.
  EXPECT_GT(satisfied.load(), kThreads * kRequestsPerThread * 9 / 10);
  EXPECT_LE(cache.unique_bytes(), cache.total_bytes());
}

TEST(ConcurrentCache, WithExclusiveSeesConsistentState) {
  ConcurrentCache cache(repo(), config());
  sim::WorkloadConfig workload;
  workload.unique_jobs = 10;
  workload.max_initial_selection = 6;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(7));
  for (const auto& spec : generator.unique_specifications()) {
    (void)cache.request(spec);
  }
  const auto total = cache.with_exclusive([](Cache& inner) {
    util::Bytes sum = 0;
    inner.for_each_image([&](const Image& image) { sum += image.bytes; });
    EXPECT_EQ(sum, inner.total_bytes());
    return sum;
  });
  EXPECT_EQ(total, cache.total_bytes());
}

}  // namespace
}  // namespace landlord::core
