#!/usr/bin/env python3
"""Regenerates the torn-snapshot corpus.

The corpus is checked in so the test suite (persist_corpus_test.cpp)
exercises byte-exact, reviewable inputs; this script documents how each
file was derived and recreates it deterministically. Checksums follow
src/util/checksum.hpp (FNV-1a 64, offset basis seedable for chaining)
and the v2 grammar in src/landlord/persist.cpp / docs/formats.md.

Usage: python3 generate.py   (from this directory)
"""

import os

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: str, seed: int = FNV_OFFSET) -> int:
    h = seed
    for b in data.encode():
        h = ((h ^ b) * FNV_PRIME) & MASK
    return h


MANIFEST = """\
# Tiny hand-written repository for the snapshot corpus.
package alpha 1.0 1000 core
package beta 2.1 2000 library
dep alpha/1.0
package gamma 3.0 3000 library
dep alpha/1.0
package delta 4.2 500 leaf
dep beta/2.1
package epsilon 0.9 800 leaf
"""

# Record blobs exactly as persist.cpp serialises them (constraint lines
# belong to the record and are covered by its checksum).
RECORDS = [
    "image 4 0 0 alpha/1.0 beta/2.1\n",
    "image 1 1 1 alpha/1.0 beta/2.1 delta/4.2\nconstraint 1 delta==4.2\n",
    "image 0 0 0 alpha/1.0 epsilon/0.9\n",
]
TOTAL_BYTES = 3000 + 3500 + 1800


def v1_snapshot() -> str:
    out = ["landlord-cache v1\n", f"# {len(RECORDS)} images, {TOTAL_BYTES} bytes\n"]
    out.extend(RECORDS)
    return "".join(out)


def v2_snapshot() -> str:
    out = ["landlord-cache v2\n", f"# {len(RECORDS)} images, {TOTAL_BYTES} bytes\n"]
    chain = FNV_OFFSET
    for ordinal, blob in enumerate(RECORDS):
        out.append(blob)
        out.append(f"check {ordinal} {fnv1a64(blob):x}\n")
        chain = fnv1a64(blob, chain)
    out.append(f"end {len(RECORDS)} {chain:x}\n")
    return "".join(out)


def v2_duplicate_snapshot() -> str:
    """Record 0 written twice (a replayed/doubled writer): the second copy
    arrives at ordinal 3 with a valid checksum, so only the duplicate
    check itself can reject it."""
    records = RECORDS + [RECORDS[0]]
    out = [
        "landlord-cache v2\n",
        f"# {len(records)} images, {TOTAL_BYTES + 3000} bytes\n",
    ]
    chain = FNV_OFFSET
    for ordinal, blob in enumerate(records):
        out.append(blob)
        out.append(f"check {ordinal} {fnv1a64(blob):x}\n")
        chain = fnv1a64(blob, chain)
    out.append(f"end {len(records)} {chain:x}\n")
    return "".join(out)


def main() -> None:
    v1 = v1_snapshot()
    v2 = v2_snapshot()
    files = {
        "repo.manifest": MANIFEST,
        # --- v1: strict restore, any damage fails the whole snapshot ---
        "v1_good.snapshot": v1,
        # cut mid-way through a package key on the last image line
        "v1_truncated.snapshot": v1[: v1.rindex("epsilon") + 3],
        "v1_badkey.snapshot": v1.replace("beta/2.1 delta", "beta/9.9 delta"),
        "v1_garbage.snapshot": "not a snapshot\n\x7f\x45\x4c\x46 random bytes\n",
        # --- v2: checksummed records, prefix recovery -------------------
        "v2_good.snapshot": v2,
        # clean cut after record 1's check line: prefix of 2 records, no
        # tail declared, missing end trailer
        "v2_truncated_tail.snapshot": v2[: v2.index("image 0 0 0")],
        # torn mid-way through record 2's image line
        "v2_torn_record.snapshot": v2[: v2.index("epsilon") + 3],
        # one byte of record 1 flipped (hits 1 -> 9): its check line no
        # longer matches, records 1 and 2 are lost
        "v2_bitflip_record.snapshot": v2.replace(
            "image 1 1 1 alpha", "image 9 1 1 alpha", 1
        ),
        # record 0's digest corrupted (still valid hex, wrong value)
        "v2_bitflip_check.snapshot": v2.replace(
            f"check 0 {fnv1a64(RECORDS[0]):x}",
            f"check 0 {fnv1a64(RECORDS[0]) ^ 0xFF:x}",
            1,
        ),
        # trailer replaced by garbage after all three good records
        "v2_garbage_tail.snapshot": v2[: v2.index("end ")] + "!!! garbage tail\n",
        "v2_missing_end.snapshot": v2[: v2.index("end ")],
        # a checksummed duplicate of record 0 appended as ordinal 3: the
        # 3-record prefix restores, the duplicate is rejected as lost
        "v2_duplicate_record.snapshot": v2_duplicate_snapshot(),
        # a stale partial record after the valid end trailer (two
        # checkpoints concatenated / writer appended past the snapshot):
        # everything declared restores, but the file is flagged corrupted
        "v2_trailing_bytes.snapshot": v2
        + "image 0 0 0 alpha/1.0 epsilon/0.9\ncheck 0 deadbeef\n",
        "empty.snapshot": "",
    }
    here = os.path.dirname(os.path.abspath(__file__))
    for name, content in sorted(files.items()):
        with open(os.path.join(here, name), "w", newline="") as f:
            f.write(content)
        print(f"wrote {name} ({len(content)} bytes)")


if __name__ == "__main__":
    main()
