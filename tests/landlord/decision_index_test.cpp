// Index-vs-scan equivalence oracle for the sublinear decision path.
//
// CacheConfig::decision_index promises that the inverted postings index,
// the ordered eviction index, and the spec memo (src/landlord/index.hpp)
// are *bit-identical* to the naive O(images) scans they replace. This
// suite replays identical seeded workloads through an indexed and a scan
// cache and compares every per-request outcome, every counter, every
// final image, and — via peek_victim — every eviction tie-break, across
// all four EvictionPolicy variants. It also regression-tests the index
// structures directly: stale postings tombstones after erasure, memo
// epoch invalidation, and reconciliation after restore.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <tuple>
#include <vector>

#include "landlord/cache.hpp"
#include "landlord/index.hpp"
#include "landlord/persist.hpp"
#include "landlord/sharded.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& shared_repo() {
  static const pkg::Repository repo = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 900;
    auto result = pkg::generate_repository(params, 1234);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return repo;
}

struct Replay {
  std::vector<spec::Specification> specs;
  std::vector<std::uint32_t> stream;
};

Replay make_replay(std::uint64_t seed) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = 50;
  workload.repetitions = 3;
  workload.max_initial_selection = 16;
  sim::WorkloadGenerator generator(shared_repo(), workload, util::Rng(seed));
  return {generator.unique_specifications(), generator.request_stream()};
}

std::vector<Image> sorted_images(const Cache& cache) {
  std::vector<Image> images;
  cache.for_each_image([&](const Image& image) { images.push_back(image); });
  std::sort(images.begin(), images.end(), [](const Image& a, const Image& b) {
    return to_value(a.id) < to_value(b.id);
  });
  return images;
}

void expect_equal_states(const Cache& scan, const Cache& indexed) {
  const auto& a = scan.counters();
  const auto& b = indexed.counters();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.conflict_rejections, b.conflict_rejections);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.written_bytes, b.written_bytes);
  EXPECT_DOUBLE_EQ(a.container_efficiency_sum, b.container_efficiency_sum);

  const auto lhs = sorted_images(scan);
  const auto rhs = sorted_images(indexed);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(to_value(lhs[i].id), to_value(rhs[i].id));
    EXPECT_TRUE(lhs[i].contents == rhs[i].contents)
        << "image " << to_value(lhs[i].id) << " contents differ";
    EXPECT_EQ(lhs[i].bytes, rhs[i].bytes);
    EXPECT_EQ(lhs[i].last_used, rhs[i].last_used);
    EXPECT_EQ(lhs[i].hits, rhs[i].hits);
    EXPECT_EQ(lhs[i].version, rhs[i].version);
  }
  EXPECT_EQ(scan.total_bytes(), indexed.total_bytes());
  EXPECT_EQ(scan.unique_bytes(), indexed.unique_bytes());
}

/// Replays the same stream through a scan cache (the oracle) and an
/// indexed cache in lockstep, comparing outcomes and — when asked — the
/// next eviction victim after every single request.
void run_index_oracle(CacheConfig config, std::uint64_t seed,
                      bool compare_victims) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(seed);

  config.decision_index = false;
  Cache scan(repo, config);
  config.decision_index = true;
  // Force the postings probe even at small N — this oracle exists to
  // prove the *index* path matches the scan; the adaptive cutover is
  // covered by AdaptiveCutoverMatchesScanAtSmallN.
  config.scan_cutover = 0;
  Cache indexed(repo, config);

  for (std::uint32_t index : replay.stream) {
    const auto expected = scan.request(replay.specs[index]);
    const auto actual = indexed.request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
    ASSERT_EQ(expected.image_bytes, actual.image_bytes);
    ASSERT_EQ(expected.split, actual.split);
    if (compare_victims) {
      const auto vs = scan.peek_victim();
      const auto vi = indexed.peek_victim();
      ASSERT_EQ(vs.has_value(), vi.has_value());
      if (vs) {
        ASSERT_EQ(to_value(*vs), to_value(*vi)) << "victim tie-break diverged";
      }
    }
  }
  expect_equal_states(scan, indexed);
  EXPECT_EQ(indexed.check_decision_index(), std::nullopt);
  EXPECT_GT(indexed.index_stats().postings_probes, 0u);

  // Persisted snapshots must be byte-identical with the knob on or off.
  std::ostringstream ss, si;
  save_cache(ss, scan, repo, SnapshotFormat::kV2);
  save_cache(si, indexed, repo, SnapshotFormat::kV2);
  EXPECT_EQ(ss.str(), si.str());
}

class DecisionIndexOracleTest
    : public testing::TestWithParam<std::tuple<double, MergePolicy, EvictionPolicy>> {};

TEST_P(DecisionIndexOracleTest, MatchesScanUnderEvictionPressure) {
  const auto [alpha, policy, eviction] = GetParam();
  CacheConfig config;
  config.alpha = alpha;
  config.policy = policy;
  config.eviction = eviction;
  config.capacity = shared_repo().total_bytes() / 4;  // forces evictions
  run_index_oracle(config, /*seed=*/11, /*compare_victims=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaByPolicyByEviction, DecisionIndexOracleTest,
    testing::Combine(
        testing::Values(0.0, 0.8, 1.0),
        testing::Values(MergePolicy::kBestFit, MergePolicy::kFirstFit,
                        MergePolicy::kMinHashLsh),
        testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                        EvictionPolicy::kLargestFirst,
                        EvictionPolicy::kHitDensity)));

// Property: across randomized seeded workloads, the ordered eviction
// index picks the identical victim as the full scan after *every*
// request, for every EvictionPolicy — including tie-breaks (last_used,
// then id) that only bite when keys collide.
TEST(EvictionIndexProperty, VictimMatchesScanEveryStep) {
  for (const auto eviction :
       {EvictionPolicy::kLru, EvictionPolicy::kLfu,
        EvictionPolicy::kLargestFirst, EvictionPolicy::kHitDensity}) {
    for (const std::uint64_t seed : {3ull, 17ull, 29ull}) {
      CacheConfig config;
      config.alpha = 0.7;
      config.eviction = eviction;
      config.capacity = shared_repo().total_bytes() / 5;
      SCOPED_TRACE(testing::Message()
                   << "eviction=" << to_string(eviction) << " seed=" << seed);
      run_index_oracle(config, seed, /*compare_victims=*/true);
    }
  }
}

TEST(DecisionIndexOracle, SplitHeavyWorkloadStaysReconciled) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(71);

  CacheConfig config;
  config.alpha = 0.9;
  config.enable_split = true;
  config.split_utilization = 0.5;  // aggressive: plenty of splits
  config.capacity = repo.total_bytes() / 3;
  config.decision_index = false;
  Cache scan(repo, config);
  config.decision_index = true;
  Cache indexed(repo, config);

  for (std::uint32_t index : replay.stream) {
    const auto expected = scan.request(replay.specs[index]);
    const auto actual = indexed.request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(expected.split, actual.split);
    // A split rewrites (or erases) the bloated image: the postings and
    // eviction order must stay exact after every such mutation.
    ASSERT_EQ(indexed.check_decision_index(), std::nullopt);
  }
  EXPECT_GT(indexed.counters().splits, 0u) << "workload exercised no splits";
  expect_equal_states(scan, indexed);
}

// Regression: erasing an image must not leave its postings entries
// reachable. Before tombstone accounting, an image erased while its
// contents had been rewritten (the split empty-remainder path erases by
// *pre-split* bits) left a stale entry that a later probe could return.
TEST(DecisionIndexUnit, ErasedImageIsNeverReturnedByProbe) {
  const std::size_t universe = 64;
  DecisionIndex index(universe, EvictionPolicy::kLru);
  DecisionIndex::ImageMap images;

  auto make_image = [&](std::uint64_t id, std::initializer_list<std::uint32_t> pkgs,
                        util::Bytes bytes) {
    Image image;
    image.id = ImageId{id};
    spec::PackageSet contents(universe);
    for (const std::uint32_t p : pkgs) contents.insert(pkg::PackageId{p});
    image.contents = std::move(contents);
    image.bytes = bytes;
    return image;
  };

  // Two images share package 1; package 1 is the rarest probe for both.
  Image a = make_image(0, {1, 2}, 100);
  Image b = make_image(1, {1, 3}, 200);
  images.emplace(0, a);
  images.emplace(1, b);
  index.insert(a);
  index.insert(b);

  spec::PackageSet probe(universe);
  probe.insert(pkg::PackageId{1});

  ASSERT_EQ(index.find_superset(probe, images), std::optional<ImageId>(ImageId{0}));

  // Erase A the way split's empty-remainder branch does: by explicit
  // pre-mutation bits/key, then drop it from the map.
  index.erase(a.contents.bits(), eviction_key(a));
  images.erase(0);

  // The tombstoned postings entry for A must not resurface; the probe
  // must fall through to B and the index must reconcile exactly.
  EXPECT_EQ(index.find_superset(probe, images), std::optional<ImageId>(ImageId{1}));
  EXPECT_EQ(index.victim(/*now=*/99).value().id, 1u);
  EXPECT_EQ(index.reconcile(images), std::nullopt);

  // Erase the survivor too: probes now find nothing, reconcile stays clean.
  index.erase(b);
  images.erase(1);
  EXPECT_EQ(index.find_superset(probe, images), std::nullopt);
  EXPECT_EQ(index.victim(/*now=*/99), std::nullopt);
  EXPECT_EQ(index.reconcile(images), std::nullopt);
}

TEST(SpecMemo, RepeatedSpecShortCircuitsThroughMemo) {
  const auto& repo = shared_repo();
  CacheConfig config;
  config.alpha = 0.0;  // no merging: decisions are pure hit/insert
  config.capacity = repo.total_bytes();
  Cache cache(repo, config);

  spec::PackageSet set(repo.size());
  for (const std::uint32_t p : {5u, 6u, 7u}) set.insert(pkg::PackageId{p});
  const spec::Specification spec(set);

  // Request 1 inserts; request 2 hits via the postings probe and stores
  // the decision; request 3+ must be served from the memo.
  const auto first = cache.request(spec);
  ASSERT_EQ(static_cast<int>(first.kind), static_cast<int>(RequestKind::kInsert));
  const auto second = cache.request(spec);
  ASSERT_EQ(static_cast<int>(second.kind), static_cast<int>(RequestKind::kHit));
  const auto before = cache.memo_stats();
  const auto third = cache.request(spec);
  ASSERT_EQ(static_cast<int>(third.kind), static_cast<int>(RequestKind::kHit));
  EXPECT_EQ(to_value(third.image), to_value(second.image));
  const auto after = cache.memo_stats();
  EXPECT_GT(after.hits, before.hits) << "third identical request missed the memo";
}

// A structural mutation can change the right answer for a memoized spec:
// inserting a *smaller* superset must invalidate the memo (epoch bump)
// so the next lookup picks the new smallest-bytes image, exactly like
// the scan would.
TEST(SpecMemo, EpochInvalidationTracksSmallerSuperset) {
  const auto& repo = shared_repo();
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = repo.total_bytes();
  config.decision_index = false;
  Cache scan(repo, config);
  config.decision_index = true;
  Cache indexed(repo, config);

  auto spec_of = [&](std::initializer_list<std::uint32_t> pkgs) {
    spec::PackageSet set(repo.size());
    for (const std::uint32_t p : pkgs) set.insert(pkg::PackageId{p});
    return spec::Specification(std::move(set));
  };

  const auto big = spec_of({10, 11, 12, 13, 14, 15});
  const auto small = spec_of({10, 11});
  const auto exact = spec_of({10, 11, 12});

  const std::vector<spec::Specification> trace = {
      big,    // insert the only superset of `small`
      small,  // hit on big; memoized
      small,  // memo hit
      exact,  // insert a smaller superset of `small` — bumps the epoch
      small,  // must now hit `exact`, not the stale memo entry
      small,
  };
  for (const auto& spec : trace) {
    const auto expected = scan.request(spec);
    const auto actual = indexed.request(spec);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
    ASSERT_EQ(expected.image_bytes, actual.image_bytes);
  }
  EXPECT_GT(indexed.memo_stats().hits, 0u);
  EXPECT_EQ(indexed.check_decision_index(), std::nullopt);
}

// The restore path rebuilds the index from adopted images; it must come
// back exact and the restored cache must keep matching the scan twin.
TEST(DecisionIndexOracle, RestoredCacheReconcilesAndMatchesScan) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(55);

  CacheConfig config;
  config.alpha = 0.7;
  config.capacity = repo.total_bytes() / 4;
  config.decision_index = true;
  Cache original(repo, config);
  for (std::uint32_t index : replay.stream) {
    (void)original.request(replay.specs[index]);
  }

  std::ostringstream out;
  save_cache(out, original, repo, SnapshotFormat::kV2);
  std::istringstream in_indexed(out.str()), in_scan(out.str());

  auto indexed = restore_cache(in_indexed, repo, config);
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed.value().check_decision_index(), std::nullopt);

  config.decision_index = false;
  auto scan = restore_cache(in_scan, repo, config);
  ASSERT_TRUE(scan.ok());

  for (std::uint32_t index : replay.stream) {
    const auto expected = scan.value().request(replay.specs[index]);
    const auto actual = indexed.value().request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
  }
  expect_equal_states(scan.value(), indexed.value());
  EXPECT_EQ(indexed.value().check_decision_index(), std::nullopt);
}

// The default config is adaptive: below CacheConfig::scan_cutover the
// superset lookup takes the linear scan (which BENCH_decision.json shows
// beats the postings probe at small N) while the index is still
// maintained for eviction and reconciliation. Decisions must match the
// scan oracle exactly, and with the cache staying under the cutover the
// postings index must never have been probed.
TEST(DecisionIndexOracle, AdaptiveCutoverMatchesScanAtSmallN) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(23);

  CacheConfig config;
  config.alpha = 0.7;
  config.capacity = repo.total_bytes() / 4;
  config.decision_index = false;
  Cache scan(repo, config);
  config.decision_index = true;
  ASSERT_GT(config.scan_cutover, 0u) << "default config must be adaptive";
  Cache indexed(repo, config);

  bool stayed_small = true;
  for (std::uint32_t index : replay.stream) {
    const auto expected = scan.request(replay.specs[index]);
    const auto actual = indexed.request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
    ASSERT_EQ(expected.image_bytes, actual.image_bytes);
    stayed_small = stayed_small && indexed.image_count() < config.scan_cutover;
  }
  expect_equal_states(scan, indexed);
  EXPECT_EQ(indexed.check_decision_index(), std::nullopt);
  if (stayed_small) {
    EXPECT_EQ(indexed.index_stats().postings_probes, 0u)
        << "a small cache must serve superset lookups from the scan";
  }
}

// Sharded sanity for the cache-wide memo: repeated identical specs
// through a multi-shard cache still match the sequential scan cache and
// actually exercise the memo fast path.
TEST(SpecMemo, ShardedMemoMatchesSequentialScan) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(91);

  CacheConfig config;
  config.alpha = 0.6;
  config.capacity = repo.total_bytes() / 4;
  config.decision_index = false;
  Cache scan(repo, config);
  config.decision_index = true;
  config.shards = 4;
  ShardedCache sharded(repo, config);

  for (std::uint32_t index : replay.stream) {
    const auto expected = scan.request(replay.specs[index]);
    const auto actual = sharded.request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
  }
  // Back-to-back identical requests with no structural mutation in
  // between must ride the memo fast path: the first repeat settles the
  // spec into the cache, the second stores the hit, the third serves it
  // from the memo.
  const auto before = sharded.memo_stats().hits;
  for (int i = 0; i < 3; ++i) {
    const auto expected = scan.request(replay.specs[0]);
    const auto actual = sharded.request(replay.specs[0]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
    ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
  }
  EXPECT_GT(sharded.memo_stats().hits, before);
  EXPECT_EQ(sharded.check_decision_index(), std::nullopt);
  EXPECT_EQ(scan.counters().hits, sharded.counters().hits);
}

}  // namespace
}  // namespace landlord::core
