#include <gtest/gtest.h>

#include "landlord/cache.hpp"

namespace landlord::core {
namespace {

using pkg::package_id;

pkg::Repository flat_repo(std::uint32_t n, util::Bytes each = 10) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", each, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

spec::Specification make_spec(const pkg::Repository& repo,
                              std::initializer_list<std::uint32_t> ids) {
  spec::PackageSet set(repo.size());
  for (auto i : ids) set.insert(package_id(i));
  return spec::Specification(std::move(set));
}

CacheConfig config(EvictionPolicy eviction, util::Bytes capacity) {
  CacheConfig c;
  c.alpha = 0.0;  // isolate eviction behaviour from merging
  c.capacity = capacity;
  c.eviction = eviction;
  return c;
}

TEST(Eviction, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(to_string(EvictionPolicy::kLfu), "lfu");
  EXPECT_STREQ(to_string(EvictionPolicy::kLargestFirst), "largest-first");
  EXPECT_STREQ(to_string(EvictionPolicy::kHitDensity), "hit-density");
}

TEST(Eviction, LruEvictsStalest) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(EvictionPolicy::kLru, 60));
  (void)cache.request(make_spec(repo, {1, 2}));    // A
  (void)cache.request(make_spec(repo, {10, 11}));  // B
  (void)cache.request(make_spec(repo, {1, 2}));    // touch A
  (void)cache.request(make_spec(repo, {20, 21, 22}));  // C: evicts B
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {10, 11})).kind, RequestKind::kInsert);
}

TEST(Eviction, LfuEvictsFewestHits) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(EvictionPolicy::kLfu, 60));
  (void)cache.request(make_spec(repo, {1, 2}));    // A
  (void)cache.request(make_spec(repo, {1, 2}));    // A: 1 hit
  (void)cache.request(make_spec(repo, {10, 11}));  // B: 0 hits
  (void)cache.request(make_spec(repo, {10, 11}));  // B: 1 hit
  (void)cache.request(make_spec(repo, {10, 11}));  // B: 2 hits — A now least
  (void)cache.request(make_spec(repo, {20, 21, 22}));  // C: evicts A (LFU)
  EXPECT_EQ(cache.request(make_spec(repo, {10, 11})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2})).kind, RequestKind::kInsert);
}

TEST(Eviction, LargestFirstEvictsBiggest) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(EvictionPolicy::kLargestFirst, 80));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4, 5}));  // big: 50 bytes
  (void)cache.request(make_spec(repo, {10, 11}));         // small: 20 bytes
  (void)cache.request(make_spec(repo, {20, 21}));  // 90 > 80: evicts big
  EXPECT_EQ(cache.request(make_spec(repo, {10, 11})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 3, 4, 5})).kind,
            RequestKind::kInsert);
}

TEST(Eviction, HitDensityKeepsHotSmallImages) {
  const auto repo = flat_repo(100);
  Cache cache(repo, config(EvictionPolicy::kHitDensity, 80));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4, 5}));  // big, cold
  (void)cache.request(make_spec(repo, {10, 11}));         // small
  (void)cache.request(make_spec(repo, {10, 11}));         // small now hot
  (void)cache.request(make_spec(repo, {20, 21}));  // evicts the cold big one
  EXPECT_EQ(cache.request(make_spec(repo, {10, 11})).kind, RequestKind::kHit);
  EXPECT_EQ(cache.request(make_spec(repo, {1, 2, 3, 4, 5})).kind,
            RequestKind::kInsert);
}

TEST(Eviction, JustServedImageNeverEvicted) {
  const auto repo = flat_repo(100);
  for (auto policy : {EvictionPolicy::kLru, EvictionPolicy::kLfu,
                      EvictionPolicy::kLargestFirst, EvictionPolicy::kHitDensity}) {
    Cache cache(repo, config(policy, 30));
    (void)cache.request(make_spec(repo, {1, 2}));
    // 50-byte image exceeds a 30-byte budget on its own, but it must
    // survive its own request even though other images get evicted.
    const auto outcome = cache.request(make_spec(repo, {10, 11, 12, 13, 14}));
    EXPECT_TRUE(cache.find(outcome.image).has_value()) << to_string(policy);
  }
}

TEST(Eviction, AllPoliciesRespectBudgetEventually) {
  const auto repo = flat_repo(200);
  for (auto policy : {EvictionPolicy::kLru, EvictionPolicy::kLfu,
                      EvictionPolicy::kLargestFirst, EvictionPolicy::kHitDensity}) {
    Cache cache(repo, config(policy, 100));
    for (std::uint32_t i = 0; i + 3 < 200; i += 3) {
      (void)cache.request(make_spec(repo, {i, i + 1, i + 2}));
    }
    EXPECT_LE(cache.total_bytes(), util::Bytes{100}) << to_string(policy);
    EXPECT_GT(cache.counters().deletes, 0u) << to_string(policy);
  }
}

}  // namespace
}  // namespace landlord::core
