// Chaos/property suite for the fault-injection layer.
//
// Every fault here is seed-deterministic (fault::FaultInjector), so the
// suite can assert exact replay: the same plan produces the same
// verdicts, the same degraded placements, and the same counters, run
// after run — across both the sequential and the sharded decision
// layers. The zero-fault guard pins the other end: an empty FaultPlan
// must leave the fault-wired paths bit-identical to the unwired code.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "landlord/landlord.hpp"
#include "landlord/persist.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 17);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config(double alpha = 0.8, std::uint32_t shards = 1) {
  core::CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes();
  c.shards = shards;
  return c;
}

std::vector<spec::Specification> workload_specs(std::uint32_t jobs,
                                                std::uint64_t seed) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = jobs;
  workload.repetitions = 2;
  workload.max_initial_selection = 12;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();
  std::vector<spec::Specification> ordered;
  ordered.reserve(stream.size());
  for (const auto index : stream) ordered.push_back(specs[index]);
  return ordered;
}

spec::Specification spec_for(std::initializer_list<std::uint32_t> ids) {
  std::vector<pkg::PackageId> request;
  for (auto i : ids) request.push_back(pkg::package_id(i));
  return spec::Specification::from_request(repo(), request);
}

// ---- FaultInjector determinism --------------------------------------

TEST(FaultInjector, SameSeedSameVerdicts) {
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 0.3)
      .fail(fault::FaultOp::kMergeRewrite, 0.7);
  plan.seed = 99;

  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.should_fail(fault::FaultOp::kBuilderDownload),
              b.should_fail(fault::FaultOp::kBuilderDownload));
    EXPECT_EQ(a.should_fail(fault::FaultOp::kMergeRewrite),
              b.should_fail(fault::FaultOp::kMergeRewrite));
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultInjector, VerdictsIndependentOfInterleaving) {
  // The k-th verdict for a class must not depend on what other classes
  // were asked in between.
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 0.5)
      .fail(fault::FaultOp::kSnapshotWrite, 0.5);
  plan.seed = 7;

  fault::FaultInjector sequential(plan);
  std::vector<bool> downloads;
  for (int i = 0; i < 50; ++i) {
    downloads.push_back(sequential.should_fail(fault::FaultOp::kBuilderDownload));
  }

  fault::FaultInjector interleaved(plan);
  for (int i = 0; i < 50; ++i) {
    (void)interleaved.should_fail(fault::FaultOp::kSnapshotWrite);
    EXPECT_EQ(interleaved.should_fail(fault::FaultOp::kBuilderDownload),
              downloads[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjector, ScheduleFiresExactOccurrences) {
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kMergeRewrite, 0).at(fault::FaultOp::kMergeRewrite, 3);
  fault::FaultInjector injector(plan);
  std::vector<bool> verdicts;
  for (int i = 0; i < 6; ++i) {
    verdicts.push_back(injector.should_fail(fault::FaultOp::kMergeRewrite));
  }
  EXPECT_EQ(verdicts, (std::vector<bool>{true, false, false, true, false, false}));
  EXPECT_EQ(injector.injected(fault::FaultOp::kMergeRewrite), 2u);
  EXPECT_EQ(injector.occurrences(fault::FaultOp::kMergeRewrite), 6u);

  injector.reset();
  EXPECT_TRUE(injector.should_fail(fault::FaultOp::kMergeRewrite));
}

TEST(FaultInjector, EmptyPlanNeverFails) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  fault::FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_fail(fault::FaultOp::kBuilderDownload));
    EXPECT_FALSE(injector.should_fail(fault::FaultOp::kSnapshotRead));
  }
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(Backoff, ExponentialBoundedAndDeterministic) {
  fault::BackoffPolicy policy;
  policy.base_delay_s = 1.0;
  policy.multiplier = 2.0;
  policy.max_delay_s = 5.0;
  policy.jitter = 0.1;
  util::Rng rng_a(3), rng_b(3);
  double previous = 0.0;
  for (std::uint32_t attempt = 0; attempt < 6; ++attempt) {
    const double a = policy.delay_for(attempt, rng_a);
    const double b = policy.delay_for(attempt, rng_b);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, policy.max_delay_s * (1.0 + policy.jitter));
    if (attempt > 0 && attempt < 3) {
      EXPECT_GT(a, previous * 0.9);
    }
    previous = a;
  }
}

// ---- Zero-fault equivalence guard -----------------------------------

TEST(ZeroFault, WiredPathsBitIdenticalToUnwired) {
  const auto stream = workload_specs(40, 11);

  core::Landlord plain(repo(), cache_config());
  core::Landlord wired(repo(), cache_config());
  fault::FaultInjector injector{fault::FaultPlan{}};
  wired.set_fault_injector(&injector);

  for (const auto& spec : stream) {
    const auto a = plain.submit(spec);
    const auto b = wired.submit(spec);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(core::to_value(a.image), core::to_value(b.image));
    EXPECT_EQ(a.image_bytes, b.image_bytes);
    EXPECT_EQ(a.requested_bytes, b.requested_bytes);
    EXPECT_DOUBLE_EQ(a.prep_seconds, b.prep_seconds);
    EXPECT_FALSE(b.degraded);
    EXPECT_FALSE(b.failed);
    EXPECT_EQ(b.build_retries, 0u);
  }
  EXPECT_DOUBLE_EQ(plain.total_prep_seconds(), wired.total_prep_seconds());

  const auto ca = plain.counters();
  const auto cb = wired.counters();
  EXPECT_EQ(ca.requests, cb.requests);
  EXPECT_EQ(ca.hits, cb.hits);
  EXPECT_EQ(ca.merges, cb.merges);
  EXPECT_EQ(ca.inserts, cb.inserts);
  EXPECT_EQ(ca.deletes, cb.deletes);
  EXPECT_EQ(ca.written_bytes, cb.written_bytes);

  const auto degraded = wired.degraded();
  EXPECT_EQ(degraded.build_failures, 0u);
  EXPECT_EQ(degraded.retries, 0u);
  EXPECT_EQ(degraded.error_placements, 0u);
  EXPECT_EQ(degraded.toctou_retries, 0u);

  // Snapshots are bit-identical too (v1 is the default writer).
  std::ostringstream snap_a, snap_b;
  core::save_cache(snap_a, plain.cache(), repo());
  core::save_cache(snap_b, wired.cache(), repo());
  EXPECT_EQ(snap_a.str(), snap_b.str());
}

// ---- Chaos invariants ------------------------------------------------

/// Structural invariants that must hold after every request, faults or
/// not: the byte ledger matches the image set, dedup never exceeds the
/// total, and no image leaks outside the count.
void expect_invariants(const core::Landlord& landlord) {
  util::Bytes summed = 0;
  std::size_t count = 0;
  const auto visit = [&](const core::Image& image) {
    summed += image.bytes;
    ++count;
    EXPECT_EQ(image.bytes, repo().bytes_of(image.contents.bits()));
  };
  if (landlord.sharded() != nullptr) {
    landlord.sharded()->for_each_image(visit);
  } else {
    landlord.cache().for_each_image(visit);
  }
  EXPECT_EQ(summed, landlord.total_bytes());
  EXPECT_EQ(count, landlord.image_count());
  EXPECT_LE(landlord.unique_bytes(), landlord.total_bytes());
  // The sublinear decision index (postings refcounts, postings contents,
  // eviction order) must reconcile against a from-scratch rebuild after
  // every chaos mutation — nullopt means consistent (or knob off).
  EXPECT_EQ(landlord.check_decision_index(), std::nullopt);
}

/// Placement-field invariants (core::placement_violation) checked after
/// every submit in the chaos loops. This is what used to catch fire: a
/// rung-2 fallback claiming the merged *cached* image it never built,
/// and a rung-3 fallback reporting the split part instead of the
/// unsplit image it actually served.
void expect_sound_placement(const core::Landlord& landlord,
                            const core::JobPlacement& placement) {
  const auto violation = core::placement_violation(landlord, placement);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

struct ChaosOutcome {
  core::CacheCounters counters;
  fault::DegradedCounters degraded;
  double prep_seconds = 0.0;
  std::uint64_t degraded_placements = 0;
  std::uint64_t failed_placements = 0;
};

ChaosOutcome run_chaos(std::uint32_t shards, std::uint64_t fault_seed,
                       bool check_invariants) {
  const auto stream = workload_specs(30, 23);

  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 0.35)
      .fail(fault::FaultOp::kMergeRewrite, 0.35);
  plan.seed = fault_seed;
  fault::FaultInjector injector(plan);

  auto config = cache_config(0.85, shards);
  config.capacity = repo().total_bytes() / 6;  // force evictions too
  core::Landlord landlord(repo(), config);
  landlord.set_fault_injector(&injector);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 1;
  landlord.set_backoff_policy(backoff);

  ChaosOutcome outcome;
  for (const auto& spec : stream) {
    const auto placement = landlord.submit(spec);
    outcome.prep_seconds += placement.prep_seconds;
    if (placement.degraded) ++outcome.degraded_placements;
    if (placement.failed) ++outcome.failed_placements;
    if (check_invariants) {
      expect_invariants(landlord);
      // Single-threaded replay: the placement cannot be invalidated by a
      // racing eviction, so the check is exact for any shard count.
      expect_sound_placement(landlord, placement);
    }
  }
  outcome.counters = landlord.counters();
  outcome.degraded = landlord.degraded();
  return outcome;
}

TEST(Chaos, SequentialInvariantsHoldUnderFaults) {
  const auto outcome = run_chaos(1, 1234, true);
  EXPECT_GT(outcome.degraded.build_failures, 0u);
  EXPECT_GT(outcome.degraded.retries, 0u);
  EXPECT_GT(outcome.counters.requests, 0u);
}

TEST(Chaos, ShardedInvariantsHoldUnderFaults) {
  const auto outcome = run_chaos(4, 1234, true);
  EXPECT_GT(outcome.degraded.build_failures, 0u);
  EXPECT_GT(outcome.counters.requests, 0u);
}

TEST(Chaos, SameSeedReplaysIdenticalCounters) {
  for (const std::uint32_t shards : {1u, 4u}) {
    const auto first = run_chaos(shards, 555, false);
    const auto second = run_chaos(shards, 555, false);
    EXPECT_EQ(first.counters.requests, second.counters.requests);
    EXPECT_EQ(first.counters.hits, second.counters.hits);
    EXPECT_EQ(first.counters.merges, second.counters.merges);
    EXPECT_EQ(first.counters.inserts, second.counters.inserts);
    EXPECT_EQ(first.counters.deletes, second.counters.deletes);
    EXPECT_EQ(first.counters.written_bytes, second.counters.written_bytes);
    EXPECT_EQ(first.degraded.build_failures, second.degraded.build_failures);
    EXPECT_EQ(first.degraded.retries, second.degraded.retries);
    EXPECT_EQ(first.degraded.backoffs, second.degraded.backoffs);
    EXPECT_DOUBLE_EQ(first.degraded.backoff_seconds,
                     second.degraded.backoff_seconds);
    EXPECT_EQ(first.degraded.fallback_exact_builds,
              second.degraded.fallback_exact_builds);
    EXPECT_EQ(first.degraded.error_placements, second.degraded.error_placements);
    EXPECT_EQ(first.degraded_placements, second.degraded_placements);
    EXPECT_EQ(first.failed_placements, second.failed_placements);
    EXPECT_DOUBLE_EQ(first.prep_seconds, second.prep_seconds);
  }
}

// ---- Degradation ladder ---------------------------------------------

TEST(Degradation, RetrySucceedsAndChargesBackoff) {
  // First build attempt fails (scheduled), the retry succeeds: the
  // placement lands normally but carries the backoff wait.
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kBuilderDownload, 0);
  fault::FaultInjector injector(plan);

  core::Landlord landlord(repo(), cache_config());
  landlord.set_fault_injector(&injector);

  const auto placement = landlord.submit(spec_for({500, 501}));
  EXPECT_EQ(placement.kind, core::RequestKind::kInsert);
  EXPECT_FALSE(placement.failed);
  EXPECT_FALSE(placement.degraded);
  EXPECT_EQ(placement.build_retries, 1u);
  const auto degraded = landlord.degraded();
  EXPECT_EQ(degraded.build_failures, 1u);
  EXPECT_EQ(degraded.retries, 1u);
  EXPECT_GT(degraded.backoff_seconds, 0.0);
  // Prep = successful build + the modelled wait before the retry.
  EXPECT_GT(placement.prep_seconds, degraded.backoff_seconds);
}

TEST(Degradation, FailedMergeRewriteFallsBackToExactInsert) {
  // Every merge rewrite fails; downloads succeed. The decided merge
  // cannot be materialised, so the job gets an exact, uncached image.
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kMergeRewrite, 1.0);
  fault::FaultInjector injector(plan);

  core::Landlord landlord(repo(), cache_config(0.95));
  landlord.set_fault_injector(&injector);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 1;
  landlord.set_backoff_policy(backoff);

  (void)landlord.submit(spec_for({500, 501, 502}));
  const auto merged = landlord.submit(spec_for({500, 501, 503}));
  ASSERT_EQ(landlord.counters().merges, 1u);  // decision layer merged
  EXPECT_TRUE(merged.degraded);
  EXPECT_FALSE(merged.failed);
  EXPECT_EQ(merged.kind, core::RequestKind::kInsert);  // served exact
  EXPECT_EQ(merged.image_bytes, merged.requested_bytes);
  EXPECT_GT(merged.prep_seconds, 0.0);
  EXPECT_EQ(landlord.degraded().fallback_exact_builds, 1u);
  // Regression: the placement used to claim the *merged cached image* —
  // an image whose rewrite just failed and whose contents the job never
  // got. A rung-2 fallback ships a one-off image that is not in the
  // cache, reported via the uncached sentinel.
  EXPECT_TRUE(core::is_uncached(merged.image));
  EXPECT_EQ(core::to_value(merged.image), core::to_value(core::kUncachedImage));
  expect_sound_placement(landlord, merged);
}

TEST(Degradation, FailedSplitRebuildServesUnsplitImage) {
  auto config = cache_config(1.0);
  config.enable_split = true;
  config.split_utilization = 0.6;

  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kMergeRewrite, 1.0);  // merges AND split rebuilds
  fault::FaultInjector injector(plan);

  core::Landlord landlord(repo(), config);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 0;
  landlord.set_backoff_policy(backoff);

  const auto small = spec_for({500});
  (void)landlord.submit(small);
  const auto bloated = landlord.submit(spec_for({300, 301, 302, 303}));  // merge: bloat
  landlord.set_fault_injector(&injector);                 // faults start now
  const auto placement = landlord.submit(small);          // hit via split
  EXPECT_EQ(placement.kind, core::RequestKind::kHit);
  EXPECT_TRUE(placement.degraded);
  EXPECT_FALSE(placement.failed);
  EXPECT_GT(landlord.counters().splits, 0u);
  EXPECT_EQ(landlord.degraded().fallback_unsplit_hits, 1u);
  // Regression: the placement used to report the freshly split *part*
  // (id and bytes of an image whose rebuild just failed). What the job
  // actually runs in is the worker's on-disk copy of the unsplit bloated
  // image — its id and pre-split size.
  EXPECT_EQ(core::to_value(placement.image), core::to_value(bloated.image));
  EXPECT_EQ(placement.image_bytes, bloated.image_bytes);
  EXPECT_GT(placement.image_bytes, placement.requested_bytes);
  expect_sound_placement(landlord, placement);
}

TEST(Degradation, ExhaustionSurfacesErrorPlacement) {
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 1.0)
      .fail(fault::FaultOp::kMergeRewrite, 1.0);
  fault::FaultInjector injector(plan);

  core::Landlord landlord(repo(), cache_config());
  landlord.set_fault_injector(&injector);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 2;
  landlord.set_backoff_policy(backoff);

  const auto placement = landlord.submit(spec_for({500, 501}));
  EXPECT_TRUE(placement.failed);
  EXPECT_FALSE(placement.error.empty());
  EXPECT_EQ(placement.build_retries, 2u);
  EXPECT_GT(placement.prep_seconds, 0.0);  // backoff waits still charged
  EXPECT_EQ(landlord.degraded().error_placements, 1u);
  expect_sound_placement(landlord, placement);

  // The decision layer stays structurally consistent even though the
  // materialisation failed.
  expect_invariants(landlord);

  // A later fault-free submit of the same spec hits the (decision-layer)
  // image and rebuilds nothing.
  landlord.set_fault_injector(nullptr);
  const auto retry = landlord.submit(spec_for({500, 501}));
  EXPECT_EQ(retry.kind, core::RequestKind::kHit);
  EXPECT_FALSE(retry.failed);
}

// ---- TOCTOU regression (ISSUE satellite: landlord.cpp decided-image
// eviction between request() and find()) ------------------------------

TEST(Toctou, ConcurrentEvictionIsCountedAndRetriedOnce) {
  const auto spec_b = spec_for({500, 501});
  const auto spec_big = spec_for({100, 101, 102, 103, 104, 105});

  auto config = cache_config(0.0);  // pure insert cache, no merging
  config.capacity =
      spec_b.bytes(repo()) + spec_big.bytes(repo()) - 1;  // only one fits

  core::Landlord landlord(repo(), config);
  bool hook_fired = false;
  landlord.set_submit_test_hook([&] {
    if (hook_fired) return;  // the hook's own submit re-enters
    hook_fired = true;
    // Simulates the racing thread: inserting the big image evicts the
    // image the outer submit just decided on.
    (void)landlord.submit(spec_big);
  });

  const auto placement = landlord.submit(spec_b);
  EXPECT_TRUE(hook_fired);
  // The decided image was evicted mid-submit; submit() must notice,
  // count it, and re-run the decision instead of silently skipping the
  // build (prep cost was under-counted before the fix).
  EXPECT_EQ(landlord.degraded().toctou_retries, 1u);
  EXPECT_FALSE(placement.failed);
  EXPECT_GT(placement.prep_seconds, 0.0);
  // The retried decision served the spec: its image is resident now.
  const auto image = landlord.find(placement.image);
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(spec_b.satisfied_by(image->contents));
  expect_invariants(landlord);
  expect_sound_placement(landlord, placement);
}

}  // namespace
}  // namespace landlord
