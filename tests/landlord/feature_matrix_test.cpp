// Cross-feature property matrix: Algorithm 1's invariants must hold for
// every combination of merge policy x eviction policy x splitting on a
// realistic workload — features may change *which* image serves a job
// and what gets evicted, never correctness or accounting.
#include <gtest/gtest.h>

#include <tuple>

#include "landlord/cache.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& shared_repo() {
  static const pkg::Repository repo = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 900;
    auto result = pkg::generate_repository(params, 111);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return repo;
}

using MatrixParam = std::tuple<MergePolicy, EvictionPolicy, bool /*split*/,
                               double /*alpha*/>;

class FeatureMatrixTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(FeatureMatrixTest, InvariantsHoldEndToEnd) {
  const auto [merge_policy, eviction, split, alpha] = GetParam();
  const auto& repo = shared_repo();

  CacheConfig config;
  config.alpha = alpha;
  config.policy = merge_policy;
  config.eviction = eviction;
  config.enable_split = split;
  config.split_utilization = 0.3;
  config.capacity = repo.total_bytes() / 3;
  Cache cache(repo, config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 50;
  workload.repetitions = 3;
  workload.max_initial_selection = 15;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(7));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    const auto outcome = cache.request(spec);

    // Served image exists and satisfies the spec.
    const auto image = cache.find(outcome.image);
    ASSERT_TRUE(image.has_value());
    EXPECT_TRUE(spec.satisfied_by(image->contents));
    EXPECT_EQ(image->bytes, repo.bytes_of(image->contents.bits()));

    // Counter identities.
    const auto& counters = cache.counters();
    EXPECT_EQ(counters.requests,
              counters.hits + counters.merges + counters.inserts);

    // Byte accounting matches a recount.
    util::Bytes sum = 0;
    std::size_t count = 0;
    cache.for_each_image([&](const Image& img) {
      sum += img.bytes;
      ++count;
      // Lineage entries are always subsets of the image contents.
      for (const auto& entry : img.lineage) {
        EXPECT_TRUE(entry.is_subset_of(img.contents));
      }
      EXPECT_LE(img.lineage.size(), config.max_lineage + 1);
    });
    EXPECT_EQ(sum, cache.total_bytes());
    EXPECT_EQ(count, cache.image_count());
    EXPECT_LE(cache.unique_bytes(), cache.total_bytes());
  }

  // Budget respected at rest (modulo the single-oversized-image case).
  if (cache.image_count() > 1) {
    EXPECT_LE(cache.total_bytes(), config.capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, FeatureMatrixTest,
    testing::Combine(
        testing::Values(MergePolicy::kFirstFit, MergePolicy::kBestFit,
                        MergePolicy::kMinHashLsh),
        testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                        EvictionPolicy::kLargestFirst,
                        EvictionPolicy::kHitDensity),
        testing::Bool(),
        testing::Values(0.6, 0.9)));

}  // namespace
}  // namespace landlord::core
