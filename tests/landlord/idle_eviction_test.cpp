// Idle (TTL) eviction extension: images untouched for N requests age out
// even under budget — the "bloated image eventually evicted" mechanism.
#include <gtest/gtest.h>

#include "landlord/cache.hpp"

namespace landlord::core {
namespace {

using pkg::package_id;

pkg::Repository flat_repo(std::uint32_t n) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", 10, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

spec::Specification make_spec(const pkg::Repository& repo,
                              std::initializer_list<std::uint32_t> ids) {
  spec::PackageSet set(repo.size());
  for (auto i : ids) set.insert(package_id(i));
  return spec::Specification(std::move(set));
}

TEST(IdleEviction, DisabledByDefault) {
  const auto repo = flat_repo(100);
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = 1'000'000;
  Cache cache(repo, config);
  (void)cache.request(make_spec(repo, {1}));
  for (std::uint32_t i = 10; i < 60; ++i) {
    (void)cache.request(make_spec(repo, {i}));
  }
  // 50 requests later the first image is still resident.
  EXPECT_EQ(cache.request(make_spec(repo, {1})).kind, RequestKind::kHit);
}

TEST(IdleEviction, IdleImageAgesOut) {
  const auto repo = flat_repo(100);
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = 1'000'000;
  config.max_idle_requests = 5;
  Cache cache(repo, config);
  (void)cache.request(make_spec(repo, {1}));
  for (std::uint32_t i = 10; i < 20; ++i) {
    (void)cache.request(make_spec(repo, {i}));
  }
  EXPECT_EQ(cache.request(make_spec(repo, {1})).kind, RequestKind::kInsert);
  EXPECT_GT(cache.counters().deletes, 0u);
}

TEST(IdleEviction, ActiveImageSurvives) {
  const auto repo = flat_repo(100);
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = 1'000'000;
  config.max_idle_requests = 4;
  Cache cache(repo, config);
  (void)cache.request(make_spec(repo, {1}));
  for (std::uint32_t round = 0; round < 10; ++round) {
    (void)cache.request(make_spec(repo, {50 + round}));
    (void)cache.request(make_spec(repo, {1}));  // keep hot
  }
  EXPECT_EQ(cache.request(make_spec(repo, {1})).kind, RequestKind::kHit);
}

TEST(IdleEviction, ExactBoundaryIsKept) {
  const auto repo = flat_repo(100);
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = 1'000'000;
  config.max_idle_requests = 3;
  Cache cache(repo, config);
  (void)cache.request(make_spec(repo, {1}));  // clock 1
  (void)cache.request(make_spec(repo, {2}));  // clock 2: idle 1
  (void)cache.request(make_spec(repo, {3}));  // clock 3: idle 2
  (void)cache.request(make_spec(repo, {4}));  // clock 4: idle 3 == limit, kept
  EXPECT_EQ(cache.request(make_spec(repo, {1})).kind, RequestKind::kHit);
}

TEST(IdleEviction, CountsTowardDeletesAndBytes) {
  const auto repo = flat_repo(100);
  CacheConfig config;
  config.alpha = 0.0;
  config.capacity = 1'000'000;
  config.max_idle_requests = 2;
  Cache cache(repo, config);
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {10}));
  (void)cache.request(make_spec(repo, {11}));
  (void)cache.request(make_spec(repo, {12}));  // first image now idle 3 > 2
  EXPECT_EQ(cache.counters().deletes, 1u);
  util::Bytes sum = 0;
  cache.for_each_image([&](const Image& image) { sum += image.bytes; });
  EXPECT_EQ(sum, cache.total_bytes());
}

}  // namespace
}  // namespace landlord::core
