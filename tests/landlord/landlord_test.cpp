#include "landlord/landlord.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pkg/synthetic.hpp"
#include "spec/inference.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 5);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

spec::Specification spec_for(std::initializer_list<std::uint32_t> ids) {
  std::vector<pkg::PackageId> request;
  for (auto i : ids) request.push_back(pkg::package_id(i));
  return spec::Specification::from_request(repo(), request);
}

CacheConfig cache_config(double alpha) {
  CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes();
  return c;
}

TEST(Landlord, FirstSubmitInsertsAndCharsPrepTime) {
  Landlord landlord(repo(), cache_config(0.8));
  const auto placement = landlord.submit(spec_for({500, 501}));
  EXPECT_EQ(placement.kind, RequestKind::kInsert);
  EXPECT_GT(placement.prep_seconds, 0.0);
  EXPECT_GT(placement.image_bytes, util::Bytes{0});
  EXPECT_EQ(placement.image_bytes, placement.requested_bytes);
  EXPECT_DOUBLE_EQ(landlord.total_prep_seconds(), placement.prep_seconds);
}

TEST(Landlord, RepeatSubmitHitsWithZeroPrep) {
  Landlord landlord(repo(), cache_config(0.8));
  (void)landlord.submit(spec_for({500, 501}));
  const double after_first = landlord.total_prep_seconds();
  const auto placement = landlord.submit(spec_for({500, 501}));
  EXPECT_EQ(placement.kind, RequestKind::kHit);
  EXPECT_DOUBLE_EQ(placement.prep_seconds, 0.0);
  EXPECT_DOUBLE_EQ(landlord.total_prep_seconds(), after_first);
}

TEST(Landlord, MergeRebuildCostsLessThanColdBuild) {
  // The builder's chunk cache persists, so a merge re-build downloads
  // only new content: its prep time must be below a cold build of the
  // same merged image.
  Landlord landlord(repo(), cache_config(0.95));
  const auto first = landlord.submit(spec_for({500, 501, 502}));
  const auto merged = landlord.submit(spec_for({500, 501, 503}));
  ASSERT_EQ(merged.kind, RequestKind::kMerge);

  // Cold reference build of the merged contents.
  Landlord cold(repo(), cache_config(0.95));
  const auto cold_spec = spec_for({500, 501, 502, 503});
  const auto cold_build = cold.submit(cold_spec);
  EXPECT_LT(merged.prep_seconds, cold_build.prep_seconds);
  EXPECT_GT(first.prep_seconds, 0.0);
}

TEST(Landlord, SplitHitChargesRebuildTime) {
  // A hit that triggers a lineage split rewrites two images; the
  // placement must carry that preparation cost instead of reporting a
  // free hit.
  auto config = cache_config(1.0);
  config.enable_split = true;
  config.split_utilization = 0.6;
  Landlord landlord(repo(), config);
  const auto small = spec_for({500});
  (void)landlord.submit(small);
  (void)landlord.submit(spec_for({300, 301, 302, 303}));  // merged: bloat
  const auto placement = landlord.submit(small);          // hit via split
  EXPECT_EQ(placement.kind, RequestKind::kHit);
  EXPECT_GT(landlord.cache().counters().splits, 0u);
  EXPECT_GT(placement.prep_seconds, 0.0);
}

TEST(Landlord, PlacementImageSatisfiesSpec) {
  Landlord landlord(repo(), cache_config(0.9));
  const auto spec = spec_for({100, 200, 300});
  const auto placement = landlord.submit(spec);
  const auto image = landlord.cache().find(placement.image);
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(spec.satisfied_by(image->contents));
}

TEST(Landlord, RequestedBytesNeverExceedImageBytes) {
  Landlord landlord(repo(), cache_config(0.9));
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto placement = landlord.submit(spec_for({i * 7 % 600, i * 13 % 600}));
    EXPECT_LE(placement.requested_bytes, placement.image_bytes);
  }
}

TEST(Landlord, WorksWithInferredSpecs) {
  // End-to-end: infer a spec from a synthetic job log referencing real
  // repo packages, then submit it.
  const auto& r = repo();
  const auto& info = r[pkg::package_id(42)];
  std::string log_line =
      "open /cvmfs/sft.cern.ch/" + info.name + "/" + info.version + "/lib/x.so\n";
  std::istringstream log(log_line);
  const auto requirements = spec::scan_job_log(log);
  ASSERT_EQ(requirements.size(), 1u);
  const auto spec = spec::infer_specification(r, requirements, "job-log");
  EXPECT_GE(spec.size(), 1u);

  Landlord landlord(r, cache_config(0.8));
  const auto placement = landlord.submit(spec);
  EXPECT_EQ(placement.kind, RequestKind::kInsert);
}

}  // namespace
}  // namespace landlord::core
