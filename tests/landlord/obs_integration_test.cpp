// Reconciliation suite: the observability layer must agree *exactly*
// with the legacy counters it shadows, and must never perturb decisions.
//
// Every obs counter is bumped immediately adjacent to its
// CacheCounters / DegradedCounters twin, so any drift between a registry
// snapshot and the structs is a bug in the instrumentation — the
// acceptance gate for the metrics layer (see docs/observability.md).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "landlord/sharded.hpp"
#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "sim/crash.hpp"
#include "sim/driver.hpp"
#include "sim/workload.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 17);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

std::vector<spec::Specification> workload_specs(std::uint32_t jobs,
                                                std::uint64_t seed) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = jobs;
  workload.repetitions = 2;
  workload.max_initial_selection = 12;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();
  std::vector<spec::Specification> ordered;
  ordered.reserve(stream.size());
  for (const auto index : stream) ordered.push_back(specs[index]);
  return ordered;
}

double series(const std::map<std::string, double>& snap, const std::string& key) {
  const auto it = snap.find(key);
  EXPECT_NE(it, snap.end()) << "missing series: " << key;
  return it == snap.end() ? -1.0 : it->second;
}

std::uint64_t trace_count(const obs::EventTrace& trace, obs::EventKind kind) {
  std::uint64_t n = 0;
  for (const auto& event : trace.snapshot()) {
    if (event.kind == kind) ++n;
  }
  return n;
}

// ---- Exact counter reconciliation -----------------------------------

TEST(ObsReconcile, SequentialCacheCountersMatchSnapshotExactly) {
  const auto stream = workload_specs(40, 11);

  core::CacheConfig config;
  config.alpha = 0.85;
  config.capacity = repo().total_bytes() / 6;  // force evictions
  obs::Observability obs(1 << 16);
  core::Landlord landlord(repo(), config);
  landlord.set_observability(&obs);

  for (const auto& spec : stream) (void)landlord.submit(spec);

  const auto counters = landlord.counters();
  const auto snap = obs.registry.snapshot();
  const auto hits = series(snap, "landlord_cache_requests_total{kind=\"hit\"}");
  const auto merges = series(snap, "landlord_cache_requests_total{kind=\"merge\"}");
  const auto inserts =
      series(snap, "landlord_cache_requests_total{kind=\"insert\"}");
  EXPECT_EQ(hits, static_cast<double>(counters.hits));
  EXPECT_EQ(merges, static_cast<double>(counters.merges));
  EXPECT_EQ(inserts, static_cast<double>(counters.inserts));
  EXPECT_EQ(hits + merges + inserts, static_cast<double>(counters.requests));

  const auto evictions =
      series(snap, "landlord_cache_evictions_total{reason=\"budget\"}") +
      series(snap, "landlord_cache_evictions_total{reason=\"idle\"}") +
      series(snap, "landlord_cache_evictions_total{reason=\"split-empty\"}");
  EXPECT_EQ(evictions, static_cast<double>(counters.deletes));
  EXPECT_EQ(series(snap, "landlord_cache_splits_total"),
            static_cast<double>(counters.splits));
  EXPECT_EQ(series(snap, "landlord_cache_conflict_rejections_total"),
            static_cast<double>(counters.conflict_rejections));

  // One request-bytes observation per request, summing to the exact
  // requested byte total.
  EXPECT_EQ(series(snap, "landlord_cache_request_bytes_count"),
            static_cast<double>(counters.requests));
  EXPECT_EQ(series(snap, "landlord_cache_request_bytes_sum"),
            static_cast<double>(counters.requested_bytes));

  // Rungs: fault-free, split-free run — every request is a plain hit or
  // a built merge/insert.
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"hit\"}"),
            static_cast<double>(counters.hits));
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"build\"}"),
            static_cast<double>(counters.merges + counters.inserts));
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"exact-fallback\"}"), 0.0);
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"error\"}"), 0.0);
  EXPECT_EQ(series(snap, "landlord_submit_prep_seconds_count"),
            static_cast<double>(stream.size()));
  EXPECT_EQ(series(snap, "landlord_placement_invariant_violations_total"), 0.0);

  // The trace retained one request event per request (capacity is ample).
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kRequest), counters.requests);
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kEviction), counters.deletes);
}

TEST(ObsReconcile, RenderedTextParsesBackToTheSameSnapshot) {
  const auto stream = workload_specs(20, 5);
  obs::Observability obs;
  core::Landlord landlord(repo(), core::CacheConfig{});
  landlord.set_observability(&obs);
  for (const auto& spec : stream) (void)landlord.submit(spec);

  std::istringstream in(obs.registry.render_text());
  auto parsed = obs::parse_text(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), obs.registry.snapshot());
}

// ---- Zero perturbation ----------------------------------------------

TEST(ObsReconcile, AttachedObservabilityNeverPerturbsPlacements) {
  const auto stream = workload_specs(40, 29);

  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 8;
  config.enable_split = true;
  core::Landlord plain(repo(), config);
  core::Landlord observed(repo(), config);
  obs::Observability obs;
  observed.set_observability(&obs);

  for (const auto& spec : stream) {
    const auto a = plain.submit(spec);
    const auto b = observed.submit(spec);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(core::to_value(a.image), core::to_value(b.image));
    EXPECT_EQ(a.image_bytes, b.image_bytes);
    EXPECT_DOUBLE_EQ(a.prep_seconds, b.prep_seconds);
  }
  const auto ca = plain.counters();
  const auto cb = observed.counters();
  EXPECT_EQ(ca.hits, cb.hits);
  EXPECT_EQ(ca.merges, cb.merges);
  EXPECT_EQ(ca.inserts, cb.inserts);
  EXPECT_EQ(ca.deletes, cb.deletes);
  EXPECT_EQ(ca.splits, cb.splits);
  EXPECT_EQ(ca.written_bytes, cb.written_bytes);
}

// ---- Degradation-ladder reconciliation ------------------------------

TEST(ObsReconcile, LadderRungsMatchDegradedCountersUnderChaos) {
  const auto stream = workload_specs(30, 23);

  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 0.35)
      .fail(fault::FaultOp::kMergeRewrite, 0.35);
  plan.seed = 1234;
  fault::FaultInjector injector(plan);

  core::CacheConfig config;
  config.alpha = 0.85;
  config.capacity = repo().total_bytes() / 6;
  obs::Observability obs(1 << 16);
  core::Landlord landlord(repo(), config);
  landlord.set_observability(&obs);
  landlord.set_fault_injector(&injector);
  injector.set_observability(&obs);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 1;
  landlord.set_backoff_policy(backoff);

  for (const auto& spec : stream) (void)landlord.submit(spec);

  const auto degraded = landlord.degraded();
  const auto snap = obs.registry.snapshot();
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"exact-fallback\"}"),
            static_cast<double>(degraded.fallback_exact_builds));
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"unsplit-fallback\"}"),
            static_cast<double>(degraded.fallback_unsplit_hits));
  EXPECT_EQ(series(snap, "landlord_submit_rung_total{rung=\"error\"}"),
            static_cast<double>(degraded.error_placements));
  EXPECT_EQ(series(snap, "landlord_submit_build_retries_total"),
            static_cast<double>(degraded.retries));
  EXPECT_EQ(series(snap, "landlord_submit_toctou_retries_total"),
            static_cast<double>(degraded.toctou_retries));
  EXPECT_DOUBLE_EQ(series(snap, "landlord_submit_backoff_seconds_total"),
                   degraded.backoff_seconds);
  EXPECT_GT(degraded.retries, 0u);  // the chaos actually bit

  // Fault injector telemetry matches its own accessors per class.
  EXPECT_EQ(
      series(snap, "landlord_fault_ops_total{op=\"builder-download\"}"),
      static_cast<double>(injector.occurrences(fault::FaultOp::kBuilderDownload)));
  EXPECT_EQ(
      series(snap, "landlord_fault_injected_total{op=\"builder-download\"}"),
      static_cast<double>(injector.injected(fault::FaultOp::kBuilderDownload)));
  EXPECT_EQ(
      series(snap, "landlord_fault_injected_total{op=\"merge-rewrite\"}"),
      static_cast<double>(injector.injected(fault::FaultOp::kMergeRewrite)));

  // The misreporting bugs stay fixed under chaos: the self-check that
  // runs inside every submit() found nothing.
  EXPECT_EQ(series(snap, "landlord_placement_invariant_violations_total"), 0.0);
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kInvariantViolation), 0u);
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kFallbackExact),
            degraded.fallback_exact_builds);
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kFaultInjected),
            injector.total_injected());
}

// ---- Sharded decision layer -----------------------------------------

TEST(ObsReconcile, ShardedCountersAndGaugesMatch) {
  const auto stream = workload_specs(40, 41);

  core::CacheConfig config;
  config.alpha = 0.85;
  config.capacity = repo().total_bytes() / 6;
  config.shards = 4;
  obs::Observability obs;
  core::ShardedCache cache(repo(), config);
  cache.set_observability(&obs);

  for (const auto& spec : stream) (void)cache.request(spec);
  cache.publish_metrics();

  const auto counters = cache.counters();
  const auto snap = obs.registry.snapshot();
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"hit\"}"),
            static_cast<double>(counters.hits));
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"merge\"}"),
            static_cast<double>(counters.merges));
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"insert\"}"),
            static_cast<double>(counters.inserts));
  EXPECT_EQ(series(snap, "landlord_shard_lock_contentions_total"),
            static_cast<double>(counters.shard_lock_contentions));
  EXPECT_EQ(series(snap, "landlord_shard_optimistic_retries_total"),
            static_cast<double>(counters.optimistic_retries));
  EXPECT_EQ(series(snap, "landlord_shard_cross_moves_total"),
            static_cast<double>(counters.cross_shard_moves));

  // Published per-shard gauges sum to the cache-wide totals.
  double images = 0.0;
  double bytes = 0.0;
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    images += series(
        snap, "landlord_shard_images{shard=\"" + std::to_string(s) + "\"}");
    bytes += series(
        snap, "landlord_shard_bytes{shard=\"" + std::to_string(s) + "\"}");
  }
  EXPECT_EQ(images, static_cast<double>(cache.image_count()));
  EXPECT_EQ(bytes, static_cast<double>(cache.total_bytes()));
}

// ---- Crash-replay lifetime ------------------------------------------

TEST(ObsReconcile, CrashReplayAccumulatesAcrossIncarnations) {
  sim::CrashReplayConfig config;
  config.cache.alpha = 0.8;
  config.cache.capacity = repo().total_bytes();
  config.workload.unique_jobs = 40;
  config.workload.repetitions = 3;
  config.workload.max_initial_selection = 12;
  config.seed = 7;
  config.crash.checkpoint_every = 25;
  config.crash.crash_every = 60;
  config.faults.fail(fault::FaultOp::kSnapshotWrite, 0.5);
  config.faults.seed = 99;

  obs::Observability obs(1 << 16);
  config.obs = &obs;
  const auto result = sim::run_crash_replay(repo(), config);
  ASSERT_GT(result.crashes, 0u);
  ASSERT_GT(result.torn_checkpoints, 0u);

  const auto snap = obs.registry.snapshot();
  EXPECT_EQ(series(snap, "landlord_crashes_total"),
            static_cast<double>(result.crashes));
  EXPECT_EQ(series(snap, "landlord_checkpoints_total{result=\"torn\"}"),
            static_cast<double>(result.torn_checkpoints));
  EXPECT_EQ(series(snap, "landlord_checkpoints_total{result=\"ok\"}"),
            static_cast<double>(result.checkpoints - result.torn_checkpoints));

  // Decision counters survive the kill in the registry exactly as they
  // do in the driver's accumulator: the series are monotone across
  // incarnations because restore() re-attaches the same handles.
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"hit\"}"),
            static_cast<double>(result.counters.hits));
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"merge\"}"),
            static_cast<double>(result.counters.merges));
  EXPECT_EQ(series(snap, "landlord_cache_requests_total{kind=\"insert\"}"),
            static_cast<double>(result.counters.inserts));
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kRestore), result.crashes);
  EXPECT_EQ(trace_count(obs.trace, obs::EventKind::kCheckpoint),
            result.checkpoints);
}

// ---- Simulation driver plumbing -------------------------------------

TEST(ObsReconcile, RunSimulationAttachesWhenConfigured) {
  sim::SimulationConfig config;
  config.cache.alpha = 0.75;
  config.cache.capacity = repo().total_bytes();
  config.workload.unique_jobs = 30;
  config.workload.repetitions = 2;
  config.workload.max_initial_selection = 12;
  config.seed = 3;

  obs::Observability obs;
  config.obs = &obs;
  const auto result = sim::run_simulation(repo(), config);

  const auto snap = obs.registry.snapshot();
  const auto total =
      series(snap, "landlord_cache_requests_total{kind=\"hit\"}") +
      series(snap, "landlord_cache_requests_total{kind=\"merge\"}") +
      series(snap, "landlord_cache_requests_total{kind=\"insert\"}");
  EXPECT_EQ(total, static_cast<double>(result.counters.requests));

  // And the same config without obs produces identical counters: the
  // driver-level attach is zero-perturbation too.
  sim::SimulationConfig detached = config;
  detached.obs = nullptr;
  const auto plain = sim::run_simulation(repo(), detached);
  EXPECT_EQ(plain.counters.hits, result.counters.hits);
  EXPECT_EQ(plain.counters.merges, result.counters.merges);
  EXPECT_EQ(plain.counters.inserts, result.counters.inserts);
  EXPECT_EQ(plain.counters.written_bytes, result.counters.written_bytes);
}

}  // namespace
}  // namespace landlord
