#include "landlord/persist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 700;
    auto result = pkg::generate_repository(params, 131);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

CacheConfig config(double alpha = 0.8) {
  CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes();
  return c;
}

Cache populated_cache() {
  Cache cache(repo(), config());
  sim::WorkloadConfig workload;
  workload.unique_jobs = 25;
  workload.repetitions = 2;
  workload.max_initial_selection = 10;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(3));
  const auto specs = generator.unique_specifications();
  for (auto index : generator.request_stream()) (void)cache.request(specs[index]);
  return cache;
}

TEST(Persist, RoundTripPreservesImages) {
  const auto original = populated_cache();
  std::stringstream snapshot;
  save_cache(snapshot, original, repo());

  auto restored = restore_cache(snapshot, repo(), config());
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_EQ(restored.value().image_count(), original.image_count());
  EXPECT_EQ(restored.value().total_bytes(), original.total_bytes());
  EXPECT_EQ(restored.value().unique_bytes(), original.unique_bytes());
}

TEST(Persist, RestoreChargesNoWrites) {
  const auto original = populated_cache();
  std::stringstream snapshot;
  save_cache(snapshot, original, repo());
  auto restored = restore_cache(snapshot, repo(), config());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().counters().written_bytes, util::Bytes{0});
  EXPECT_EQ(restored.value().counters().inserts, 0u);
  EXPECT_EQ(restored.value().counters().requests, 0u);
}

TEST(Persist, RestoredCacheServesSameRequests) {
  Cache original(repo(), config());
  sim::WorkloadConfig workload;
  workload.unique_jobs = 15;
  workload.max_initial_selection = 8;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(5));
  const auto specs = generator.unique_specifications();
  for (const auto& spec : specs) (void)original.request(spec);

  std::stringstream snapshot;
  save_cache(snapshot, original, repo());
  auto restored = restore_cache(snapshot, repo(), config());
  ASSERT_TRUE(restored.ok());

  // Every spec the original could serve hits in the restored cache too.
  for (const auto& spec : specs) {
    EXPECT_EQ(restored.value().request(spec).kind, RequestKind::kHit);
  }
}

TEST(Persist, HitAndMergeHistorySurvive) {
  Cache original(repo(), config(0.9));
  sim::WorkloadConfig workload;
  workload.unique_jobs = 10;
  workload.repetitions = 3;
  workload.max_initial_selection = 8;
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(7));
  const auto specs = generator.unique_specifications();
  for (auto index : generator.request_stream()) (void)original.request(specs[index]);

  std::uint64_t original_hits = 0;
  std::uint32_t original_merges = 0;
  original.for_each_image([&](const Image& image) {
    original_hits += image.hits;
    original_merges += image.merge_count;
  });

  std::stringstream snapshot;
  save_cache(snapshot, original, repo());
  auto restored = restore_cache(snapshot, repo(), config(0.9));
  ASSERT_TRUE(restored.ok());

  std::uint64_t restored_hits = 0;
  std::uint32_t restored_merges = 0;
  restored.value().for_each_image([&](const Image& image) {
    restored_hits += image.hits;
    restored_merges += image.merge_count;
  });
  EXPECT_EQ(restored_hits, original_hits);
  EXPECT_EQ(restored_merges, original_merges);
}

TEST(Persist, ConstraintsSurviveRoundTrip) {
  Cache original(repo(), config());
  spec::PackageSet set(repo().size());
  set.insert(pkg::package_id(5));
  spec::Specification spec(std::move(set));
  spec.add_constraint({"python", spec::ConstraintOp::kEq, "3.8"});
  (void)original.request(spec);

  std::stringstream snapshot;
  save_cache(snapshot, original, repo());
  auto restored = restore_cache(snapshot, repo(), config());
  ASSERT_TRUE(restored.ok());

  bool found = false;
  restored.value().for_each_image([&](const Image& image) {
    for (const auto& constraint : image.constraints) {
      found |= constraint.package == "python" && constraint.version == "3.8" &&
               constraint.op == spec::ConstraintOp::kEq;
    }
  });
  EXPECT_TRUE(found);
}

TEST(Persist, SmallerBudgetEvictsOldestOnRestore) {
  const auto original = populated_cache();
  std::stringstream snapshot;
  save_cache(snapshot, original, repo());

  auto small = config();
  small.capacity = original.total_bytes() / 3;
  auto restored = restore_cache(snapshot, repo(), small);
  ASSERT_TRUE(restored.ok());
  EXPECT_LT(restored.value().image_count(), original.image_count());
  EXPECT_LE(restored.value().total_bytes(), small.capacity);
  EXPECT_GT(restored.value().counters().deletes, 0u);
}

TEST(Persist, EmptyCacheRoundTrips) {
  Cache empty(repo(), config());
  std::stringstream snapshot;
  save_cache(snapshot, empty, repo());
  auto restored = restore_cache(snapshot, repo(), config());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().image_count(), 0u);
}

TEST(Persist, RejectsBadMagicAndGarbage) {
  {
    std::istringstream in("not a snapshot\n");
    EXPECT_FALSE(restore_cache(in, repo(), config()).ok());
  }
  {
    std::istringstream in("landlord-cache v1\nfrobnicate\n");
    EXPECT_FALSE(restore_cache(in, repo(), config()).ok());
  }
  {
    std::istringstream in("landlord-cache v1\nimage 0 0 0 ghost/1\n");
    EXPECT_FALSE(restore_cache(in, repo(), config()).ok());
  }
  {
    std::istringstream in("landlord-cache v1\nconstraint 0 x==1\n");
    EXPECT_FALSE(restore_cache(in, repo(), config()).ok());
  }
}

TEST(Persist, FileRoundTrip) {
  const auto original = populated_cache();
  const std::string path = testing::TempDir() + "/landlord_cache_snapshot.txt";
  ASSERT_TRUE(save_cache_file(path, original, repo()));
  auto restored = restore_cache_file(path, repo(), config());
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_EQ(restored.value().image_count(), original.image_count());
  std::remove(path.c_str());
  EXPECT_FALSE(restore_cache_file(path, repo(), config()).ok());
}

}  // namespace
}  // namespace landlord::core
