// Sequential-equivalence oracle for the sharded cache.
//
// With a single replay thread the ShardedCache promises bit-identical
// decisions to the sequential Cache for ANY shard count (sharded.hpp,
// "Determinism"). This suite replays the same seeded workload through
// both and compares every counter and the full final image set — ids,
// contents, sizes, usage history — across shard counts, merge policies,
// alphas, eviction pressure, splitting and idle eviction. Any divergence
// in decision order, tie-breaking or ledger arithmetic fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "landlord/cache.hpp"
#include "landlord/persist.hpp"
#include "landlord/sharded.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

const pkg::Repository& shared_repo() {
  static const pkg::Repository repo = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 1200;
    auto result = pkg::generate_repository(params, 77);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return repo;
}

struct Replay {
  std::vector<spec::Specification> specs;
  std::vector<std::uint32_t> stream;
};

Replay make_replay(std::uint64_t seed) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = 60;
  workload.repetitions = 3;
  workload.max_initial_selection = 20;
  sim::WorkloadGenerator generator(shared_repo(), workload, util::Rng(seed));
  return {generator.unique_specifications(), generator.request_stream()};
}

std::vector<Image> sorted_images(std::vector<Image> images) {
  std::sort(images.begin(), images.end(), [](const Image& a, const Image& b) {
    return to_value(a.id) < to_value(b.id);
  });
  return images;
}

void expect_equal_counters(const CacheCounters& seq, const CacheCounters& shd) {
  EXPECT_EQ(seq.requests, shd.requests);
  EXPECT_EQ(seq.hits, shd.hits);
  EXPECT_EQ(seq.merges, shd.merges);
  EXPECT_EQ(seq.inserts, shd.inserts);
  EXPECT_EQ(seq.deletes, shd.deletes);
  EXPECT_EQ(seq.splits, shd.splits);
  EXPECT_EQ(seq.conflict_rejections, shd.conflict_rejections);
  EXPECT_EQ(seq.requested_bytes, shd.requested_bytes);
  EXPECT_EQ(seq.written_bytes, shd.written_bytes);
  EXPECT_DOUBLE_EQ(seq.container_efficiency_sum, shd.container_efficiency_sum);
  // Single-threaded replay never races: no retries, no contention.
  EXPECT_EQ(shd.shard_lock_contentions, 0u);
  EXPECT_EQ(shd.optimistic_retries, 0u);
}

void expect_equal_images(const Cache& seq, const ShardedCache& shd) {
  std::vector<Image> sequential;
  seq.for_each_image([&](const Image& image) { sequential.push_back(image); });
  sequential = sorted_images(std::move(sequential));
  const auto sharded = sorted_images(shd.snapshot_images());

  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const Image& a = sequential[i];
    const Image& b = sharded[i];
    EXPECT_EQ(to_value(a.id), to_value(b.id));
    EXPECT_TRUE(a.contents == b.contents)
        << "image " << to_value(a.id) << " contents differ";
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.last_used, b.last_used);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.merge_count, b.merge_count);
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.constraints, b.constraints);
  }
  EXPECT_EQ(seq.total_bytes(), shd.total_bytes());
  EXPECT_EQ(seq.unique_bytes(), shd.unique_bytes());
  EXPECT_EQ(seq.image_count(), shd.image_count());
  EXPECT_DOUBLE_EQ(seq.cache_efficiency(), shd.cache_efficiency());
}

/// Replays the same stream through four caches — sequential and sharded,
/// each with the sublinear decision index on and off — and compares every
/// per-request outcome, the counters, the final image sets, and the
/// persisted snapshots. The scan path is the oracle the indexed path must
/// reproduce bit for bit (CacheConfig::decision_index).
void run_oracle(CacheConfig config, std::uint32_t shards, std::uint64_t seed) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(seed);

  config.decision_index = false;
  Cache seq_scan(repo, config);
  config.decision_index = true;
  Cache seq_indexed(repo, config);
  config.shards = shards;
  config.decision_index = false;
  ShardedCache shd_scan(repo, config);
  config.decision_index = true;
  ShardedCache shd_indexed(repo, config);

  for (std::uint32_t index : replay.stream) {
    const auto expected = seq_scan.request(replay.specs[index]);
    const Cache::Outcome outcomes[] = {seq_indexed.request(replay.specs[index]),
                                       shd_scan.request(replay.specs[index]),
                                       shd_indexed.request(replay.specs[index])};
    for (const auto& actual : outcomes) {
      ASSERT_EQ(to_value(expected.image), to_value(actual.image))
          << "decision diverged at stream position";
      ASSERT_EQ(static_cast<int>(expected.kind), static_cast<int>(actual.kind));
      ASSERT_EQ(expected.image_bytes, actual.image_bytes);
      ASSERT_EQ(expected.split, actual.split);
    }
  }
  expect_equal_counters(seq_scan.counters(), shd_scan.counters());
  expect_equal_counters(seq_scan.counters(), shd_indexed.counters());
  expect_equal_counters(seq_indexed.counters(), shd_indexed.counters());
  expect_equal_images(seq_scan, shd_scan);
  expect_equal_images(seq_indexed, shd_indexed);
  expect_equal_images(seq_scan, shd_indexed);

  // The index structures themselves must still reconcile with a
  // from-scratch rebuild after the whole replay.
  EXPECT_EQ(seq_indexed.check_decision_index(), std::nullopt);
  EXPECT_EQ(shd_indexed.check_decision_index(), std::nullopt);

  // Persisted snapshots must be byte-identical with the knob on or off.
  const auto snapshot_of = [&repo](const auto& cache) {
    std::ostringstream out;
    save_cache(out, cache, repo, SnapshotFormat::kV2);
    return out.str();
  };
  EXPECT_EQ(snapshot_of(seq_scan), snapshot_of(seq_indexed));
  EXPECT_EQ(snapshot_of(shd_scan), snapshot_of(shd_indexed));
}

class ShardedEquivalenceTest
    : public testing::TestWithParam<std::tuple<std::uint32_t, double, MergePolicy>> {};

TEST_P(ShardedEquivalenceTest, MatchesSequentialUnderEvictionPressure) {
  const auto [shards, alpha, policy] = GetParam();
  CacheConfig config;
  config.alpha = alpha;
  config.policy = policy;
  config.capacity = shared_repo().total_bytes() / 4;  // forces evictions
  run_oracle(config, shards, /*seed=*/5);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByAlphaByPolicy, ShardedEquivalenceTest,
    testing::Combine(testing::Values(1u, 2u, 4u, 8u),
                     testing::Values(0.0, 0.6, 0.95, 1.0),
                     testing::Values(MergePolicy::kBestFit, MergePolicy::kFirstFit,
                                     MergePolicy::kMinHashLsh)));

TEST(ShardedEquivalence, SplitConfigMatchesSequential) {
  CacheConfig config;
  config.alpha = 0.9;
  config.enable_split = true;
  config.split_utilization = 0.5;  // aggressive: plenty of splits
  config.capacity = shared_repo().total_bytes();
  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    run_oracle(config, shards, /*seed=*/9);
  }
}

TEST(ShardedEquivalence, IdleEvictionMatchesSequential) {
  CacheConfig config;
  config.alpha = 0.5;
  config.max_idle_requests = 25;
  config.capacity = shared_repo().total_bytes();
  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    run_oracle(config, shards, /*seed=*/13);
  }
}

TEST(ShardedEquivalence, AdoptMatchesSequential) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(21);

  CacheConfig config;
  config.alpha = 0.7;
  config.capacity = repo.total_bytes() / 4;
  Cache sequential(repo, config);
  config.shards = 4;
  ShardedCache sharded(repo, config);

  // Seed both caches through adopt() (the restore path), then keep
  // requesting — adopted state must not perturb equivalence.
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& spec = replay.specs[i];
    const auto a = sequential.adopt(spec.packages(), {}, /*hits=*/i, /*merge_count=*/1,
                                    /*version=*/2);
    const auto b = sharded.adopt(spec.packages(), {}, /*hits=*/i, /*merge_count=*/1,
                                 /*version=*/2);
    ASSERT_EQ(to_value(a), to_value(b));
  }
  for (std::uint32_t index : replay.stream) {
    const auto expected = sequential.request(replay.specs[index]);
    const auto actual = sharded.request(replay.specs[index]);
    ASSERT_EQ(to_value(expected.image), to_value(actual.image));
  }
  expect_equal_images(sequential, sharded);
}

TEST(ShardedEquivalence, ShardStatsAreConsistentWithTotals) {
  const auto& repo = shared_repo();
  const auto replay = make_replay(33);

  CacheConfig config;
  config.alpha = 0.6;
  config.capacity = repo.total_bytes() / 4;
  config.shards = 8;
  ShardedCache cache(repo, config);
  for (std::uint32_t index : replay.stream) (void)cache.request(replay.specs[index]);

  const auto stats = cache.shard_stats();
  ASSERT_EQ(stats.size(), 8u);
  std::uint64_t images = 0;
  util::Bytes bytes = 0;
  std::uint64_t inserts = 0;
  for (const auto& shard : stats) {
    images += shard.images;
    bytes += shard.bytes;
    inserts += shard.homed_inserts;
    EXPECT_GE(shard.lock_acquisitions, shard.lock_contentions);
  }
  EXPECT_EQ(images, cache.image_count());
  EXPECT_EQ(bytes, cache.total_bytes());
  // Every insert (and adopted image) was homed to exactly one shard.
  EXPECT_GE(inserts, cache.counters().inserts);

  // find() agrees with the snapshot for every live image.
  for (const auto& image : cache.snapshot_images()) {
    const auto found = cache.find(image.id);
    ASSERT_TRUE(found.has_value());
    EXPECT_TRUE(found->contents == image.contents);
  }
}

}  // namespace
}  // namespace landlord::core
