// Deterministic multi-threaded stress test for the sharded cache.
//
// Eight workers replay seeded per-thread traces (the inputs are fully
// deterministic; only the interleaving is scheduler-chosen) against one
// ShardedCache, starting together behind a barrier, while a reader
// thread hammers the introspection paths. After the storm the cache must
// satisfy every structural invariant regardless of interleaving:
// counters balance, the atomic byte ledger equals the sum over live
// images, no ImageId appears twice, and the byte budget is enforced.
// Run under -DLANDLORD_SANITIZE=thread to turn scheduler nondeterminism
// into data-race detection (ctest label: concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include "landlord/sharded.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

constexpr std::uint32_t kThreads = 8;

const pkg::Repository& shared_repo() {
  static const pkg::Repository repo = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 1200;
    auto result = pkg::generate_repository(params, 77);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return repo;
}

/// One worker's deterministic trace: seed => specs => replay order.
std::vector<spec::Specification> thread_trace(std::uint64_t seed) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.repetitions = 3;
  workload.max_initial_selection = 16;
  sim::WorkloadGenerator generator(shared_repo(), workload, util::Rng(seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();
  std::vector<spec::Specification> trace;
  trace.reserve(stream.size());
  for (std::uint32_t index : stream) trace.push_back(specs[index]);
  return trace;
}

/// Runs the storm and checks every post-quiescence invariant.
void run_storm(CacheConfig config) {
  const auto& repo = shared_repo();
  ShardedCache cache(repo, config);

  // Traces are generated before the storm so workers only touch the cache.
  std::vector<std::vector<spec::Specification>> traces;
  std::uint64_t expected_requests = 0;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    traces.push_back(thread_trace(/*seed=*/100 + t));
    expected_requests += traces.back().size();
  }

  std::barrier start(kThreads + 1);
  std::atomic<bool> storm_over{false};
  std::vector<std::jthread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (const auto& spec : traces[t]) {
        const auto outcome = cache.request(spec);
        // A racing eviction can remove the image (or a racing merge can
        // regrow it) before we find() it, so only structural sanity is
        // checkable here: a resident image's size matches its contents.
        if (const auto image = cache.find(outcome.image)) {
          EXPECT_EQ(image->bytes, repo.bytes_of(image->contents.bits()));
        }
      }
    });
  }
  // Reader thread: introspection must be race-free mid-storm. Counter
  // reads are individually consistent, so the only sound cross-field
  // check is against a *later* read of the monotone request counter
  // (every op was counted after its request started).
  std::jthread reader([&] {
    start.arrive_and_wait();
    while (!storm_over.load(std::memory_order_acquire)) {
      const auto counters = cache.counters();
      const auto requests_after = cache.counters().requests;
      EXPECT_LE(counters.hits + counters.merges + counters.inserts, requests_after);
      util::Bytes sum = 0;
      for (const auto& image : cache.snapshot_images()) sum += image.bytes;
      (void)sum;  // ledger vs. sum is only exact at quiescence
      (void)cache.unique_bytes();
      (void)cache.shard_stats();
      std::this_thread::yield();
    }
  });
  workers.clear();  // join the storm
  storm_over.store(true, std::memory_order_release);
  reader.join();

  // ---- Post-quiescence invariants ----
  const auto counters = cache.counters();
  EXPECT_EQ(counters.requests, expected_requests);
  EXPECT_EQ(counters.requests, counters.hits + counters.merges + counters.inserts);

  const auto snapshot = cache.snapshot_images();
  EXPECT_EQ(snapshot.size(), cache.image_count());
  EXPECT_EQ(cache.image_count(),
            counters.inserts + counters.splits - counters.deletes);

  // The atomic ledger equals the recomputed sum over live images, and
  // every image's size matches its contents.
  util::Bytes sum = 0;
  std::set<std::uint64_t> ids;
  for (const auto& image : snapshot) {
    sum += image.bytes;
    EXPECT_EQ(image.bytes, repo.bytes_of(image.contents.bits()));
    EXPECT_TRUE(ids.insert(to_value(image.id)).second)
        << "duplicate ImageId " << to_value(image.id);
  }
  EXPECT_EQ(sum, cache.total_bytes());
  EXPECT_LE(cache.unique_bytes(), cache.total_bytes());
  const double efficiency = cache.cache_efficiency();
  EXPECT_GT(efficiency, 0.0);
  EXPECT_LE(efficiency, 1.0);

  // Budget respected once quiescent (the single-image exception aside).
  if (cache.image_count() > 1) {
    EXPECT_LE(cache.total_bytes(), config.capacity);
  }

  // Per-shard occupancy sums to the ledger.
  std::uint64_t shard_images = 0;
  util::Bytes shard_bytes = 0;
  for (const auto& shard : cache.shard_stats()) {
    shard_images += shard.images;
    shard_bytes += shard.bytes;
  }
  EXPECT_EQ(shard_images, cache.image_count());
  EXPECT_EQ(shard_bytes, cache.total_bytes());
}

TEST(ShardedStress, EightThreadsEightShardsUnderEvictionPressure) {
  CacheConfig config;
  config.alpha = 0.8;
  config.shards = 8;
  config.capacity = shared_repo().total_bytes() / 4;
  run_storm(config);
}

TEST(ShardedStress, LshPolicyWithSplitsAndFewShards) {
  CacheConfig config;
  config.alpha = 0.6;
  config.policy = MergePolicy::kMinHashLsh;
  config.shards = 4;
  config.enable_split = true;
  config.split_utilization = 0.4;
  config.capacity = shared_repo().total_bytes() / 2;
  run_storm(config);
}

TEST(ShardedStress, IdleEvictionAndMoreThreadsThanShards) {
  CacheConfig config;
  config.alpha = 0.9;
  config.shards = 2;  // heavy contention: 8 threads on 2 shards
  config.max_idle_requests = 40;
  config.capacity = shared_repo().total_bytes() / 3;
  run_storm(config);
}

}  // namespace
}  // namespace landlord::core
