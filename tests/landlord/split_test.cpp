// Image splitting (extension): a hit on a badly bloated image carves it
// along its merge lineage into a tight part for the request plus a
// remainder carrying the other constituents.
#include <gtest/gtest.h>

#include "landlord/cache.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::core {
namespace {

using pkg::package_id;

pkg::Repository flat_repo(std::uint32_t n, util::Bytes each = 10) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", each, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

spec::Specification make_spec(const pkg::Repository& repo,
                              std::initializer_list<std::uint32_t> ids) {
  spec::PackageSet set(repo.size());
  for (auto i : ids) set.insert(package_id(i));
  return spec::Specification(std::move(set));
}

CacheConfig split_config(double utilization = 0.5) {
  CacheConfig c;
  c.alpha = 1.0;  // merge aggressively to create bloat
  c.capacity = 1'000'000;
  c.enable_split = true;
  c.split_utilization = utilization;
  return c;
}

TEST(Split, BloatedHitSplitsImage) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.5));
  (void)cache.request(make_spec(repo, {1, 2}));            // A
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));  // merged: 6 pkgs
  // Requesting {1,2} now hits a 60-byte image with 20 bytes requested
  // (utilization 0.33 < 0.5) -> split.
  const auto outcome = cache.request(make_spec(repo, {1, 2}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(cache.counters().splits, 1u);
  EXPECT_EQ(outcome.image_bytes, util::Bytes{20});  // tight part
  EXPECT_EQ(cache.image_count(), 2u);
}

TEST(Split, RemainderStillServesOtherConstituent) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.5));
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));
  (void)cache.request(make_spec(repo, {1, 2}));  // split
  const auto other = cache.request(make_spec(repo, {50, 51, 52, 53}));
  EXPECT_EQ(other.kind, RequestKind::kHit);
  EXPECT_EQ(other.image_bytes, util::Bytes{40});
}

TEST(Split, DisabledByDefault) {
  const auto repo = flat_repo(100);
  CacheConfig c;
  c.alpha = 1.0;
  c.capacity = 1'000'000;
  Cache cache(repo, c);
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));
  const auto outcome = cache.request(make_spec(repo, {1, 2}));
  EXPECT_EQ(cache.counters().splits, 0u);
  EXPECT_EQ(outcome.image_bytes, util::Bytes{60});  // full bloated image
}

TEST(Split, HighUtilizationHitDoesNotSplit) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.25));
  (void)cache.request(make_spec(repo, {1, 2, 3}));
  (void)cache.request(make_spec(repo, {1, 2, 4}));  // merged: 4 pkgs
  // {1,2,3} uses 30 of 40 bytes = 0.75 utilization > 0.25: no split.
  const auto outcome = cache.request(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(cache.counters().splits, 0u);
}

TEST(Split, NeverSplitsUnmergedImages) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.99));
  (void)cache.request(make_spec(repo, {1, 2, 3, 4, 5, 6, 7, 8}));
  // Subset hit with tiny utilization, but the image was never merged —
  // splitting a pristine insert would serve no one.
  const auto outcome = cache.request(make_spec(repo, {1}));
  EXPECT_EQ(outcome.kind, RequestKind::kHit);
  EXPECT_EQ(cache.counters().splits, 0u);
}

TEST(Split, SplitChargesWrites) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.5));
  (void)cache.request(make_spec(repo, {1, 2}));            // write 20
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));  // write 60 (merge)
  const auto before = cache.counters().written_bytes;
  (void)cache.request(make_spec(repo, {1, 2}));  // split: writes 20 + 40
  EXPECT_EQ(cache.counters().written_bytes, before + 60);
}

TEST(Split, TotalBytesConsistentAfterSplit) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.5));
  (void)cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));
  (void)cache.request(make_spec(repo, {1, 2}));
  util::Bytes sum = 0;
  cache.for_each_image([&](const Image& image) { sum += image.bytes; });
  EXPECT_EQ(sum, cache.total_bytes());
  EXPECT_EQ(cache.total_bytes(), util::Bytes{60});  // 20 + 40, no overlap
}

TEST(Split, RemainderVersionBumpsForWorkerInvalidation) {
  const auto repo = flat_repo(100);
  Cache cache(repo, split_config(0.5));
  const auto first = cache.request(make_spec(repo, {1, 2}));
  (void)cache.request(make_spec(repo, {50, 51, 52, 53}));
  const auto merged_version = cache.find(first.image)->version;
  (void)cache.request(make_spec(repo, {1, 2}));  // split
  const auto remainder = cache.find(first.image);
  ASSERT_TRUE(remainder.has_value());
  EXPECT_GT(remainder->version, merged_version);
}

TEST(Split, EndToEndOnSyntheticWorkload) {
  // Splitting enabled on a realistic stream: every request is still
  // satisfied and accounting stays consistent.
  pkg::SyntheticRepoParams params;
  params.total_packages = 1000;
  auto repo = pkg::generate_repository(params, 13);
  ASSERT_TRUE(repo.ok());

  CacheConfig c;
  c.alpha = 0.9;
  c.capacity = repo.value().total_bytes() / 2;
  c.enable_split = true;
  c.split_utilization = 0.3;
  Cache cache(repo.value(), c);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 80;
  workload.repetitions = 4;
  workload.max_initial_selection = 20;
  sim::WorkloadGenerator generator(repo.value(), workload, util::Rng(5));
  const auto specs = generator.unique_specifications();
  for (auto index : generator.request_stream()) {
    const auto outcome = cache.request(specs[index]);
    const auto image = cache.find(outcome.image);
    ASSERT_TRUE(image.has_value());
    EXPECT_TRUE(specs[index].satisfied_by(image->contents));
  }
  EXPECT_GT(cache.counters().splits, 0u);

  util::Bytes sum = 0;
  cache.for_each_image([&](const Image& image) { sum += image.bytes; });
  EXPECT_EQ(sum, cache.total_bytes());
}

}  // namespace
}  // namespace landlord::core
