// Unit tests for the metrics primitives and the registry round trip.
//
// The tier-1 gate renders a registry to the Prometheus text format and
// parses it back (scripts/tier1.sh stage 4), so render_text/parse_text
// must be exact inverses for every metric kind — including histogram
// expansion — and the primitives must count exactly, even under
// contention.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace landlord::obs {
namespace {

TEST(Counter, CountsExactlyAndMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ExactUnderContention) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
      });
    }
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(1.25);
  g.add(-0.75);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Histogram, BucketsAreUpperBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (le is inclusive, Prometheus semantics)
  h.observe(10.0);   // <= 10
  h.observe(99.0);   // <= 100
  h.observe(1000.0); // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 10.0 + 99.0 + 1000.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, DefaultBucketBoundsStrictlyIncrease) {
  for (const auto& bounds : {default_seconds_buckets(), default_bytes_buckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(Registry, SameNameAndLabelsYieldSameHandle) {
  Registry reg;
  Counter& a = reg.counter("requests_total", {{"kind", "hit"}});
  Counter& b = reg.counter("requests_total", {{"kind", "hit"}});
  Counter& other = reg.counter("requests_total", {{"kind", "miss"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, RenderTextEmitsHelpTypeAndLabels) {
  Registry reg;
  reg.counter("jobs_total", {{"site", "a"}}, "Jobs processed.").inc(7);
  reg.gauge("cache_bytes", {}, "Resident bytes.").set(1024.0);

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("# HELP jobs_total Jobs processed."), std::string::npos);
  EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("jobs_total{site=\"a\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cache_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("cache_bytes 1024"), std::string::npos);
}

TEST(Registry, HistogramRendersCumulativeBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("latency_seconds", {1.0, 10.0}, {}, "Latency.");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos);
}

TEST(Registry, SnapshotMatchesHandles) {
  Registry reg;
  reg.counter("a_total", {{"k", "v"}}).inc(5);
  reg.gauge("b").set(2.5);
  reg.histogram("h", {1.0}).observe(0.5);

  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("a_total{k=\"v\"}"), 5.0);
  EXPECT_DOUBLE_EQ(snap.at("b"), 2.5);
  EXPECT_DOUBLE_EQ(snap.at("h_count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("h_sum"), 0.5);
  EXPECT_DOUBLE_EQ(snap.at("h_bucket{le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("h_bucket{le=\"+Inf\"}"), 1.0);
}

TEST(Registry, RenderParseRoundTripIsExact) {
  // The property the tier-1 gate relies on: whatever render_text emits,
  // parse_text reads back to the same {series -> value} map as
  // snapshot().
  Registry reg;
  reg.counter("requests_total", {{"kind", "hit"}}, "Help text with spaces.").inc(12);
  reg.counter("requests_total", {{"kind", "merge"}}).inc(3);
  reg.gauge("backoff_seconds_total").set(1.5);
  Histogram& h =
      reg.histogram("prep_seconds", default_seconds_buckets(), {}, "Prep.");
  h.observe(0.01);
  h.observe(123.0);

  std::istringstream in(reg.render_text());
  auto parsed = parse_text(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), reg.snapshot());
}

TEST(ParseText, RejectsMalformedLines) {
  std::istringstream in("valid_total 1\nthis is not a metric line\n");
  const auto parsed = parse_text(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("not a metric line"), std::string::npos);
}

TEST(ParseText, RejectsNonNumericValue) {
  std::istringstream in("some_total banana\n");
  EXPECT_FALSE(parse_text(in).ok());
}

TEST(ParseText, AcceptsCommentsAndBlankLines) {
  std::istringstream in(
      "# HELP x_total Something.\n# TYPE x_total counter\n\nx_total 4\n");
  const auto parsed = parse_text(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().at("x_total"), 4.0);
}

}  // namespace
}  // namespace landlord::obs
