// Unit tests for the bounded event-trace ring and its JSONL sink.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace landlord::obs {
namespace {

TraceEvent request_event(std::uint64_t image) {
  TraceEvent event;
  event.kind = EventKind::kRequest;
  event.image = image;
  event.bytes = image * 100;
  event.detail = "hit";
  return event;
}

TEST(EventTrace, StampsMonotoneSequenceNumbers) {
  EventTrace trace(8);
  for (std::uint64_t i = 0; i < 5; ++i) trace.record(request_event(i));
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].image, i);
  }
  EXPECT_EQ(trace.recorded(), 5u);
}

TEST(EventTrace, RingKeepsMostRecentCapacityEvents) {
  EventTrace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i) trace.record(request_event(i));
  EXPECT_EQ(trace.recorded(), 10u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: seqs 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(EventTrace, ZeroCapacityClampsToOne) {
  EventTrace trace(0);
  EXPECT_EQ(trace.capacity(), 1u);
  trace.record(request_event(1));
  trace.record(request_event(2));
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].image, 2u);
}

TEST(EventTrace, WriteJsonlEmitsOneObjectPerLine) {
  EventTrace trace(8);
  TraceEvent a = request_event(3);
  a.degraded = true;
  a.seconds = 1.5;
  trace.record(a);
  TraceEvent b;
  b.kind = EventKind::kEviction;
  b.image = 7;
  b.detail = "budget";
  trace.record(b);

  std::ostringstream out;
  trace.write_jsonl(out);
  const std::string text = out.str();

  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(text.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"request\""), std::string::npos);
  EXPECT_NE(text.find("\"detail\":\"hit\""), std::string::npos);
  EXPECT_NE(text.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"eviction\""), std::string::npos);
  EXPECT_NE(text.find("\"detail\":\"budget\""), std::string::npos);
}

TEST(EventTrace, JsonlOmitsZeroFields) {
  EventTrace trace(2);
  TraceEvent minimal;
  minimal.kind = EventKind::kCheckpoint;
  trace.record(minimal);

  std::ostringstream out;
  trace.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("\"bytes\""), std::string::npos);
  EXPECT_EQ(text.find("\"degraded\""), std::string::npos);
  EXPECT_EQ(text.find("\"failed\""), std::string::npos);
  EXPECT_EQ(text.find("\"detail\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"checkpoint\""), std::string::npos);
}

TEST(EventKindNames, AreStableStrings) {
  EXPECT_STREQ(to_string(EventKind::kFallbackExact), "fallback-exact");
  EXPECT_STREQ(to_string(EventKind::kFallbackUnsplit), "fallback-unsplit");
  EXPECT_STREQ(to_string(EventKind::kInvariantViolation), "invariant-violation");
}

}  // namespace
}  // namespace landlord::obs
