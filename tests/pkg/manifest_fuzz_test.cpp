// Failure injection: the manifest and trace parsers must reject (never
// crash on) corrupted input — truncated lines, binary garbage, random
// token mutations of valid manifests.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pkg/manifest.hpp"
#include "pkg/synthetic.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace landlord::pkg {
namespace {

std::string valid_manifest_text() {
  SyntheticRepoParams params;
  params.total_packages = 60;
  auto repo = generate_repository(params, 7);
  EXPECT_TRUE(repo.ok());
  std::ostringstream out;
  write_manifest(repo.value(), out);
  return out.str();
}

class ManifestFuzzTest : public testing::TestWithParam<int> {};

TEST_P(ManifestFuzzTest, RandomMutationsNeverCrash) {
  const std::string base = valid_manifest_text();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 50; ++round) {
    std::string mutated = base;
    // Apply a handful of random byte mutations / truncations.
    const auto mutations = 1 + rng.uniform(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      const auto pos = static_cast<std::size_t>(rng.uniform(mutated.size()));
      switch (rng.uniform(4)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform(32, 126));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a chunk
          mutated.insert(pos, mutated.substr(pos, std::min<std::size_t>(
                                                      16, mutated.size() - pos)));
          break;
        case 3:  // truncate
          mutated.resize(pos);
          break;
      }
    }
    // Must terminate and either parse or fail gracefully.
    auto result = parse_manifest_text(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifestFuzzTest, testing::Range(1, 5));

TEST(ManifestFuzz, BinaryGarbageRejected) {
  std::string garbage;
  util::Rng rng(99);
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>(rng.uniform(256)));
  }
  auto result = parse_manifest_text(garbage);
  // Whatever the bytes, this is astronomically unlikely to be valid; the
  // requirement is graceful rejection, not crash.
  if (!result.ok()) {
    EXPECT_FALSE(result.error().message.empty());
  }
}

TEST(ManifestFuzz, HugeSizeValuesHandled) {
  auto result = parse_manifest_text(
      "package x 1 18446744073709551615 leaf\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()[package_id(0)].size,
            18446744073709551615ULL);
  // Overflowing the u64 is a parse error, not UB.
  EXPECT_FALSE(parse_manifest_text(
                   "package x 1 99999999999999999999999999 leaf\n")
                   .ok());
}

TEST(TraceFuzz, RandomMutationsNeverCrash) {
  SyntheticRepoParams params;
  params.total_packages = 60;
  auto repo = generate_repository(params, 7);
  ASSERT_TRUE(repo.ok());

  std::string base = "landlord-trace v1\njob 0 " +
                     repo.value()[package_id(0)].key() + " " +
                     repo.value()[package_id(5)].key() +
                     "\nrequest 0\nrequest 0\n";
  util::Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = base;
    const auto pos = static_cast<std::size_t>(rng.uniform(mutated.size()));
    if (rng.chance(0.5)) {
      mutated[pos] = static_cast<char>(rng.uniform(32, 126));
    } else {
      mutated.resize(pos);
    }
    std::istringstream in(mutated);
    auto result = sim::read_trace(in, repo.value());
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }
}

}  // namespace
}  // namespace landlord::pkg
