#include "pkg/manifest.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace landlord::pkg {
namespace {

constexpr const char* kSample = R"(# sample manifest
package base 1.0 1000 core
package libA 2.0 500 library
dep base/1.0
package app 0.1 100 leaf
dep libA/2.0
)";

TEST(Manifest, ParsesValidManifest) {
  auto result = parse_manifest_text(kSample);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& repo = result.value();
  EXPECT_EQ(repo.size(), 3u);
  EXPECT_EQ(repo.total_bytes(), util::Bytes{1600});
  const auto app = repo.find("app/0.1");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(repo[*app].tier, PackageTier::kLeaf);
  EXPECT_EQ(repo.closure(*app).count(), 3u);
}

TEST(Manifest, ParsesTiers) {
  auto result = parse_manifest_text(kSample);
  ASSERT_TRUE(result.ok());
  const auto& repo = result.value();
  EXPECT_EQ(repo[*repo.find("base/1.0")].tier, PackageTier::kCore);
  EXPECT_EQ(repo[*repo.find("libA/2.0")].tier, PackageTier::kLibrary);
}

TEST(Manifest, IgnoresCommentsAndBlankLines) {
  auto result = parse_manifest_text(
      "\n# comment\n\npackage x 1 10 leaf\n\n# more\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(Manifest, HandlesCrlfLineEndings) {
  auto result = parse_manifest_text("package x 1 10 leaf\r\npackage y 1 5 core\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(Manifest, HandlesTabsAndExtraSpaces) {
  auto result = parse_manifest_text("package\tx  1\t10   leaf\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().find("x/1").has_value());
}

TEST(Manifest, ForwardDepReference) {
  auto result = parse_manifest_text(
      "package app 1 1 leaf\ndep lib/1\npackage lib 1 1 library\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().closure(*result.value().find("app/1")).count(), 2u);
}

TEST(Manifest, RejectsBadDirective) {
  auto result = parse_manifest_text("frobnicate x\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 1"), std::string::npos);
}

TEST(Manifest, RejectsWrongArity) {
  EXPECT_FALSE(parse_manifest_text("package x 1 10\n").ok());
  EXPECT_FALSE(parse_manifest_text("package x 1 10 leaf extra\n").ok());
  EXPECT_FALSE(parse_manifest_text("package x 1 10 leaf\ndep a b\n").ok());
}

TEST(Manifest, RejectsBadSize) {
  auto result = parse_manifest_text("package x 1 notanumber leaf\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("bad size"), std::string::npos);
}

TEST(Manifest, RejectsBadTier) {
  auto result = parse_manifest_text("package x 1 10 gigantic\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("tier"), std::string::npos);
}

TEST(Manifest, RejectsDepBeforePackage) {
  auto result = parse_manifest_text("dep x/1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("before any package"), std::string::npos);
}

TEST(Manifest, RejectsDanglingDep) {
  auto result = parse_manifest_text("package x 1 10 leaf\ndep ghost/1\n");
  EXPECT_FALSE(result.ok());
}

TEST(Manifest, EmptyInputYieldsEmptyRepo) {
  auto result = parse_manifest_text("");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 0u);
}

TEST(Manifest, RoundTripsThroughWriter) {
  auto original = parse_manifest_text(kSample);
  ASSERT_TRUE(original.ok());
  std::ostringstream out;
  write_manifest(original.value(), out);
  auto reparsed = parse_manifest_text(out.str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const auto& a = original.value();
  const auto& b = reparsed.value();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    const auto& pa = a[package_id(i)];
    const auto id_b = b.find(pa.key());
    ASSERT_TRUE(id_b.has_value()) << pa.key();
    EXPECT_EQ(b[*id_b].size, pa.size);
    EXPECT_EQ(b[*id_b].tier, pa.tier);
    EXPECT_EQ(b[*id_b].deps.size(), pa.deps.size());
  }
}

TEST(Manifest, LoadMissingFileFails) {
  auto result = load_manifest("/nonexistent/path/manifest.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace landlord::pkg
