#include "pkg/repo_stats.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"

namespace landlord::pkg {
namespace {

Repository chain_repo() {
  // a -> b -> c (depth 2), plus isolated d.
  RepositoryBuilder builder;
  builder.add({"c", "1", 10, PackageTier::kCore, {}});
  builder.add({"b", "1", 20, PackageTier::kLibrary, {"c/1"}});
  builder.add({"a", "1", 30, PackageTier::kLeaf, {"b/1"}});
  builder.add({"d", "1", 40, PackageTier::kLeaf, {}});
  auto result = std::move(builder).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RepoStats, CountsAndBytes) {
  const auto stats = compute_stats(chain_repo());
  EXPECT_EQ(stats.packages, 4u);
  EXPECT_EQ(stats.core_packages, 1u);
  EXPECT_EQ(stats.library_packages, 1u);
  EXPECT_EQ(stats.leaf_packages, 2u);
  EXPECT_EQ(stats.total_bytes, util::Bytes{100});
}

TEST(RepoStats, MeanDirectDeps) {
  const auto stats = compute_stats(chain_repo());
  EXPECT_DOUBLE_EQ(stats.mean_direct_deps, 0.5);  // 2 edges / 4 packages
}

TEST(RepoStats, ClosureStats) {
  const auto stats = compute_stats(chain_repo());
  // closures: c=1, b=2, a=3, d=1 -> mean 1.75, max 3.
  EXPECT_DOUBLE_EQ(stats.mean_closure_packages, 1.75);
  EXPECT_EQ(stats.max_closure_packages, 3u);
}

TEST(RepoStats, MaxDepthIsLongestChain) {
  const auto stats = compute_stats(chain_repo());
  EXPECT_EQ(stats.max_depth, 2u);
}

TEST(RepoStats, EmptyRepo) {
  RepositoryBuilder builder;
  auto repo = std::move(builder).build();
  ASSERT_TRUE(repo.ok());
  const auto stats = compute_stats(repo.value());
  EXPECT_EQ(stats.packages, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_direct_deps, 0.0);
  EXPECT_EQ(stats.max_depth, 0u);
}

TEST(RepoStats, SyntheticRepoHasBoundedDepth) {
  SyntheticRepoParams params;
  params.total_packages = 500;
  auto repo = generate_repository(params, 11);
  ASSERT_TRUE(repo.ok());
  const auto stats = compute_stats(repo.value());
  EXPECT_GT(stats.max_depth, 1u);
  EXPECT_LT(stats.max_depth, 40u);
}

}  // namespace
}  // namespace landlord::pkg
