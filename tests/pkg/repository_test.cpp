#include "pkg/repository.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace landlord::pkg {
namespace {

RepositoryBuilder::Declaration decl(std::string name, std::string version,
                                    util::Bytes size,
                                    std::vector<std::string> deps = {},
                                    PackageTier tier = PackageTier::kLeaf) {
  return {std::move(name), std::move(version), size, tier, std::move(deps)};
}

Repository small_repo() {
  // base <- libA <- app1 ; base <- libB <- app2 ; app3 -> libA, libB
  RepositoryBuilder b;
  b.add(decl("base", "1.0", 100, {}, PackageTier::kCore));
  b.add(decl("libA", "2.0", 50, {"base/1.0"}, PackageTier::kLibrary));
  b.add(decl("libB", "1.5", 60, {"base/1.0"}, PackageTier::kLibrary));
  b.add(decl("app1", "0.1", 10, {"libA/2.0"}));
  b.add(decl("app2", "0.2", 20, {"libB/1.5"}));
  b.add(decl("app3", "0.3", 30, {"libA/2.0", "libB/1.5"}));
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RepositoryBuilder, BuildsValidRepo) {
  const auto repo = small_repo();
  EXPECT_EQ(repo.size(), 6u);
  EXPECT_EQ(repo.total_bytes(), util::Bytes{270});
}

TEST(RepositoryBuilder, ForwardDependencyReferencesAllowed) {
  // deps may reference packages declared later in the manifest.
  RepositoryBuilder b;
  b.add(decl("app", "1", 10, {"lib/1"}));
  b.add(decl("lib", "1", 10));
  auto result = std::move(b).build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(RepositoryBuilder, RejectsDuplicateKeys) {
  RepositoryBuilder b;
  b.add(decl("x", "1", 1));
  b.add(decl("x", "1", 2));
  auto result = std::move(b).build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("duplicate"), std::string::npos);
}

TEST(RepositoryBuilder, AllowsSameNameDifferentVersion) {
  RepositoryBuilder b;
  b.add(decl("x", "1", 1));
  b.add(decl("x", "2", 2));
  EXPECT_TRUE(std::move(b).build().ok());
}

TEST(RepositoryBuilder, RejectsUnresolvedDependency) {
  RepositoryBuilder b;
  b.add(decl("x", "1", 1, {"ghost/9"}));
  auto result = std::move(b).build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unresolved"), std::string::npos);
}

TEST(RepositoryBuilder, RejectsSelfDependency) {
  RepositoryBuilder b;
  b.add(decl("x", "1", 1, {"x/1"}));
  auto result = std::move(b).build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("itself"), std::string::npos);
}

TEST(RepositoryBuilder, RejectsCycle) {
  RepositoryBuilder b;
  b.add(decl("a", "1", 1, {"b/1"}));
  b.add(decl("b", "1", 1, {"c/1"}));
  b.add(decl("c", "1", 1, {"a/1"}));
  auto result = std::move(b).build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("cycle"), std::string::npos);
}

TEST(RepositoryBuilder, RejectsEmptyNameOrVersion) {
  {
    RepositoryBuilder b;
    b.add(decl("", "1", 1));
    EXPECT_FALSE(std::move(b).build().ok());
  }
  {
    RepositoryBuilder b;
    b.add(decl("x", "", 1));
    EXPECT_FALSE(std::move(b).build().ok());
  }
}

TEST(RepositoryBuilder, DeduplicatesDepEdges) {
  RepositoryBuilder b;
  b.add(decl("lib", "1", 5));
  b.add(decl("app", "1", 1, {"lib/1", "lib/1", "lib/1"}));
  auto repo = std::move(b).build();
  ASSERT_TRUE(repo.ok());
  const auto app = repo.value().find("app/1");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(repo.value()[*app].deps.size(), 1u);
}

TEST(Repository, FindByKey) {
  const auto repo = small_repo();
  const auto id = repo.find("libA/2.0");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(repo[*id].name, "libA");
  EXPECT_EQ(repo[*id].version, "2.0");
  EXPECT_FALSE(repo.find("nope/0").has_value());
}

TEST(Repository, PackagesInTier) {
  const auto repo = small_repo();
  EXPECT_EQ(repo.packages_in_tier(PackageTier::kCore).size(), 1u);
  EXPECT_EQ(repo.packages_in_tier(PackageTier::kLibrary).size(), 2u);
  EXPECT_EQ(repo.packages_in_tier(PackageTier::kLeaf).size(), 3u);
}

TEST(Repository, ClosureIncludesSelfAndTransitiveDeps) {
  const auto repo = small_repo();
  const auto app1 = *repo.find("app1/0.1");
  const auto& closure = repo.closure(app1);
  EXPECT_EQ(closure.count(), 3u);  // app1, libA, base
  EXPECT_TRUE(closure.test(to_index(app1)));
  EXPECT_TRUE(closure.test(to_index(*repo.find("libA/2.0"))));
  EXPECT_TRUE(closure.test(to_index(*repo.find("base/1.0"))));
  EXPECT_FALSE(closure.test(to_index(*repo.find("libB/1.5"))));
}

TEST(Repository, ClosureOfLeafWithNoDepsIsSelf) {
  RepositoryBuilder b;
  b.add(decl("solo", "1", 7));
  auto repo = std::move(b).build();
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo.value().closure(package_id(0)).count(), 1u);
}

TEST(Repository, ClosureOfSelectionUnions) {
  const auto repo = small_repo();
  const std::vector<PackageId> selection = {*repo.find("app1/0.1"),
                                            *repo.find("app2/0.2")};
  const auto closure = repo.closure_of(selection);
  EXPECT_EQ(closure.count(), 5u);  // everything except app3
  EXPECT_FALSE(closure.test(to_index(*repo.find("app3/0.3"))));
}

TEST(Repository, ClosureOfEmptySelectionIsEmpty) {
  const auto repo = small_repo();
  EXPECT_EQ(repo.closure_of({}).count(), 0u);
}

TEST(Repository, SharedDependencyCountedOnce) {
  const auto repo = small_repo();
  const std::vector<PackageId> selection = {*repo.find("app1/0.1"),
                                            *repo.find("app3/0.3")};
  // app1: {app1, libA, base}; app3: {app3, libA, libB, base} — union 5.
  EXPECT_EQ(repo.closure_of(selection).count(), 5u);
}

TEST(Repository, BytesOfSumsSelectedSizes) {
  const auto repo = small_repo();
  const auto closure = repo.closure(*repo.find("app1/0.1"));
  EXPECT_EQ(repo.bytes_of(closure), util::Bytes{160});  // 10 + 50 + 100
}

TEST(Repository, DependentsAreReverseEdges) {
  const auto repo = small_repo();
  const auto libA = *repo.find("libA/2.0");
  const auto dependents = repo.dependents(libA);
  std::set<std::string> names;
  for (PackageId id : dependents) names.insert(repo[id].name);
  EXPECT_EQ(names, (std::set<std::string>{"app1", "app3"}));
}

TEST(Repository, TopologicalOrderRespectsDependencies) {
  const auto repo = small_repo();
  const auto order = repo.topological_order();
  ASSERT_EQ(order.size(), repo.size());
  std::vector<std::size_t> position(repo.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[to_index(order[i])] = i;
  }
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    for (PackageId dep : repo[package_id(i)].deps) {
      EXPECT_LT(position[to_index(dep)], position[i])
          << repo[package_id(i)].key() << " before its dependency "
          << repo[dep].key();
    }
  }
}

TEST(Repository, EmptySetHelper) {
  const auto repo = small_repo();
  const auto set = repo.empty_set();
  EXPECT_EQ(set.size(), repo.size());
  EXPECT_TRUE(set.none());
}

TEST(Repository, DiamondClosureCountedOnce) {
  // top -> left, right; left -> bottom; right -> bottom.
  RepositoryBuilder b;
  b.add(decl("bottom", "1", 1));
  b.add(decl("left", "1", 1, {"bottom/1"}));
  b.add(decl("right", "1", 1, {"bottom/1"}));
  b.add(decl("top", "1", 1, {"left/1", "right/1"}));
  auto repo = std::move(b).build();
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo.value().closure(*repo.value().find("top/1")).count(), 4u);
}

}  // namespace
}  // namespace landlord::pkg
