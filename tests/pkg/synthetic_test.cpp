#include "pkg/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pkg/repo_stats.hpp"
#include "util/rng.hpp"

namespace landlord::pkg {
namespace {

// A reduced-size repository keeps the suite fast; structure checks don't
// need the full 9,660 packages.
SyntheticRepoParams small_params() {
  SyntheticRepoParams params;
  params.total_packages = 800;
  return params;
}

TEST(SyntheticRepo, ExactPackageCount) {
  auto result = generate_repository(small_params(), 1);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().size(), 800u);
}

TEST(SyntheticRepo, DeterministicInSeed) {
  auto a = generate_repository(small_params(), 7);
  auto b = generate_repository(small_params(), 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (std::uint32_t i = 0; i < a.value().size(); ++i) {
    const auto& pa = a.value()[package_id(i)];
    const auto& pb = b.value()[package_id(i)];
    EXPECT_EQ(pa.key(), pb.key());
    EXPECT_EQ(pa.size, pb.size);
    EXPECT_EQ(pa.deps, pb.deps);
  }
}

TEST(SyntheticRepo, DifferentSeedsDiffer) {
  auto a = generate_repository(small_params(), 1);
  auto b = generate_repository(small_params(), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_different = false;
  for (std::uint32_t i = 0; i < a.value().size() && !any_different; ++i) {
    any_different = a.value()[package_id(i)].size != b.value()[package_id(i)].size;
  }
  EXPECT_TRUE(any_different);
}

TEST(SyntheticRepo, HasAllThreeTiers) {
  auto repo = generate_repository(small_params(), 3);
  ASSERT_TRUE(repo.ok());
  const auto stats = compute_stats(repo.value());
  EXPECT_GT(stats.core_packages, 0u);
  EXPECT_GT(stats.library_packages, 0u);
  EXPECT_GT(stats.leaf_packages, 0u);
  // Leaves dominate (long tail).
  EXPECT_GT(stats.leaf_packages, stats.library_packages);
  EXPECT_GT(stats.library_packages, stats.core_packages);
}

TEST(SyntheticRepo, ExperimentPrefixesPresent) {
  auto repo = generate_repository(small_params(), 4);
  ASSERT_TRUE(repo.ok());
  std::set<std::string> prefixes;
  for (std::uint32_t i = 0; i < repo.value().size(); ++i) {
    const auto& name = repo.value()[package_id(i)].name;
    const auto dash = name.find('-');
    if (dash != std::string::npos) prefixes.insert(name.substr(0, dash));
  }
  for (const char* experiment : {"alice", "atlas", "cms", "lhcb", "sft"}) {
    EXPECT_TRUE(prefixes.contains(experiment)) << experiment;
  }
}

TEST(SyntheticRepo, FrameworkHubsExist) {
  auto repo = generate_repository(small_params(), 5);
  ASSERT_TRUE(repo.ok());
  bool found = false;
  for (std::uint32_t i = 0; i < repo.value().size(); ++i) {
    if (repo.value()[package_id(i)].name.find("framework") != std::string::npos) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SyntheticRepo, CoreComponentsAreNearUniversal) {
  // "certain core components are used near-universally" (§VI): a random
  // leaf's closure almost always reaches some core package.
  auto repo = generate_repository(small_params(), 6);
  ASSERT_TRUE(repo.ok());
  const auto& r = repo.value();
  const auto leaves = r.packages_in_tier(PackageTier::kLeaf);
  ASSERT_FALSE(leaves.empty());
  int reaching_core = 0;
  for (PackageId leaf : leaves) {
    bool reaches = false;
    r.closure(leaf).for_each_set([&](std::size_t i) {
      reaches |= r[package_id(static_cast<std::uint32_t>(i))].tier ==
                 PackageTier::kCore;
    });
    reaching_core += reaches ? 1 : 0;
  }
  EXPECT_GT(reaching_core, static_cast<int>(leaves.size() * 9 / 10));
}

TEST(SyntheticRepo, ClosureAmplificationMatchesFig3Shape) {
  // Paper-scale repository: selections of <=100 packages close to roughly
  // 5x as many packages; large selections amplify less (Fig. 3).
  auto repo = default_repository(42);
  util::Rng rng(99);
  auto median_amplification = [&](std::uint32_t k) {
    double total = 0.0;
    constexpr int kReps = 10;
    for (int rep = 0; rep < kReps; ++rep) {
      auto indices = rng.sample_without_replacement(
          static_cast<std::uint32_t>(repo.size()), k);
      std::vector<PackageId> ids;
      ids.reserve(indices.size());
      for (auto i : indices) ids.push_back(package_id(i));
      total += static_cast<double>(repo.closure_of(ids).count()) / k;
    }
    return total / kReps;
  };
  const double small_amp = median_amplification(100);
  const double large_amp = median_amplification(1000);
  EXPECT_GT(small_amp, 3.0);
  EXPECT_LT(small_amp, 8.0);
  EXPECT_LT(large_amp, small_amp);  // flattening
}

TEST(SyntheticRepo, DefaultRepositoryIsPaperScale) {
  auto repo = default_repository(42);
  EXPECT_EQ(repo.size(), 9660u);
  // Multi-hundred-GB software repository.
  EXPECT_GT(repo.total_bytes(), 100 * util::kGiB);
}

TEST(SyntheticRepo, AdjacentVersionsShareDependencies) {
  // The contemporaneous version mapping should make consecutive versions
  // of one project share most of their closure.
  auto repo = generate_repository(small_params(), 8);
  ASSERT_TRUE(repo.ok());
  const auto& r = repo.value();
  int compared = 0;
  double similarity_sum = 0.0;
  for (std::uint32_t i = 0; i + 1 < r.size(); ++i) {
    const auto& a = r[package_id(i)];
    const auto& b = r[package_id(i + 1)];
    if (a.name != b.name) continue;
    const auto& ca = r.closure(package_id(i));
    const auto& cb = r.closure(package_id(i + 1));
    const double inter = static_cast<double>(ca.intersection_count(cb));
    const double uni = static_cast<double>(ca.union_count(cb));
    similarity_sum += inter / uni;
    ++compared;
  }
  ASSERT_GT(compared, 10);
  EXPECT_GT(similarity_sum / compared, 0.35);
}

TEST(SyntheticRepo, PypiLikePresetIsFlatterThanDefault) {
  SyntheticRepoParams flat = pypi_like_params();
  flat.total_packages = 800;
  SyntheticRepoParams hier = small_params();
  auto flat_repo = generate_repository(flat, 9);
  auto hier_repo = generate_repository(hier, 9);
  ASSERT_TRUE(flat_repo.ok() && hier_repo.ok());
  const auto flat_stats = compute_stats(flat_repo.value());
  const auto hier_stats = compute_stats(hier_repo.value());
  EXPECT_LT(flat_stats.mean_closure_packages, hier_stats.mean_closure_packages);
  EXPECT_LE(flat_stats.max_depth, hier_stats.max_depth);
  // No framework hubs in the flat preset.
  bool hub_found = false;
  for (std::uint32_t i = 0; i < flat_repo.value().size(); ++i) {
    hub_found |= flat_repo.value()[package_id(i)].name.find("framework") !=
                 std::string::npos;
  }
  EXPECT_FALSE(hub_found);
}

TEST(SyntheticRepo, RejectsZeroPackages) {
  SyntheticRepoParams params;
  params.total_packages = 0;
  EXPECT_FALSE(generate_repository(params, 1).ok());
}

TEST(SyntheticRepo, RejectsBadFractions) {
  SyntheticRepoParams params;
  params.core_fraction = 0.6;
  params.library_fraction = 0.6;
  EXPECT_FALSE(generate_repository(params, 1).ok());
}

TEST(SyntheticRepo, RejectsBadVersionRange) {
  SyntheticRepoParams params;
  params.min_versions = 5;
  params.max_versions = 2;
  EXPECT_FALSE(generate_repository(params, 1).ok());
}

TEST(SyntheticRepo, RejectsExperimentArityMismatch) {
  SyntheticRepoParams params;
  params.experiments = {"a", "b"};
  params.experiment_weights = {1.0};
  EXPECT_FALSE(generate_repository(params, 1).ok());
}

TEST(SyntheticRepo, PackageSizesArePositive) {
  auto repo = generate_repository(small_params(), 9);
  ASSERT_TRUE(repo.ok());
  for (std::uint32_t i = 0; i < repo.value().size(); ++i) {
    EXPECT_GE(repo.value()[package_id(i)].size, util::Bytes{4096});
  }
}

}  // namespace
}  // namespace landlord::pkg
