#include "pkg/versions.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "util/version.hpp"

namespace landlord::pkg {
namespace {

Repository chain_repo() {
  RepositoryBuilder b;
  b.add({"proj", "1.0", 10, PackageTier::kLibrary, {}});
  b.add({"proj", "1.10", 10, PackageTier::kLibrary, {}});  // > 1.9 numerically
  b.add({"proj", "1.9", 10, PackageTier::kLibrary, {}});
  b.add({"solo", "2.0", 10, PackageTier::kLeaf, {}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(VersionChains, SuccessorFollowsNaturalOrder) {
  const auto repo = chain_repo();
  const VersionChains chains(repo);
  const auto v1 = *repo.find("proj/1.0");
  const auto v19 = *repo.find("proj/1.9");
  const auto v110 = *repo.find("proj/1.10");

  ASSERT_TRUE(chains.successor(v1).has_value());
  EXPECT_EQ(*chains.successor(v1), v19);  // 1.0 -> 1.9 -> 1.10
  ASSERT_TRUE(chains.successor(v19).has_value());
  EXPECT_EQ(*chains.successor(v19), v110);
  EXPECT_FALSE(chains.successor(v110).has_value());
}

TEST(VersionChains, PredecessorMirrorsSuccessor) {
  const auto repo = chain_repo();
  const VersionChains chains(repo);
  const auto v19 = *repo.find("proj/1.9");
  const auto v110 = *repo.find("proj/1.10");
  ASSERT_TRUE(chains.predecessor(v110).has_value());
  EXPECT_EQ(*chains.predecessor(v110), v19);
  EXPECT_FALSE(chains.predecessor(*repo.find("proj/1.0")).has_value());
}

TEST(VersionChains, SingleVersionProjectHasNoNeighbours) {
  const auto repo = chain_repo();
  const VersionChains chains(repo);
  const auto solo = *repo.find("solo/2.0");
  EXPECT_FALSE(chains.successor(solo).has_value());
  EXPECT_FALSE(chains.predecessor(solo).has_value());
  EXPECT_EQ(chains.newest(solo), solo);
}

TEST(VersionChains, NewestWalksToChainEnd) {
  const auto repo = chain_repo();
  const VersionChains chains(repo);
  EXPECT_EQ(chains.newest(*repo.find("proj/1.0")), *repo.find("proj/1.10"));
  EXPECT_EQ(chains.newest(*repo.find("proj/1.10")), *repo.find("proj/1.10"));
}

TEST(VersionChains, ConsistentOnSyntheticRepository) {
  SyntheticRepoParams params;
  params.total_packages = 500;
  auto repo = generate_repository(params, 31);
  ASSERT_TRUE(repo.ok());
  const VersionChains chains(repo.value());
  for (std::uint32_t i = 0; i < repo.value().size(); ++i) {
    const auto id = package_id(i);
    if (auto next = chains.successor(id)) {
      // Same project, strictly newer version, and we are its predecessor.
      EXPECT_EQ(repo.value()[*next].name, repo.value()[id].name);
      EXPECT_GT(util::version_compare(repo.value()[*next].version,
                                      repo.value()[id].version),
                0);
      ASSERT_TRUE(chains.predecessor(*next).has_value());
      EXPECT_EQ(*chains.predecessor(*next), id);
    }
  }
}

}  // namespace
}  // namespace landlord::pkg
