// Concurrency suite for the service plane, written to run under TSan
// (tier1.sh stage 2b): many clients submitting in parallel, graceful
// drain in the middle of the storm, and bounded-queue admission control
// under a deliberately saturated queue.
//
// Drain contract under test (docs/serve.md): once drain() begins, no
// new connection is accepted and new submits are rejected with
// `draining`, but every already-admitted frame is still answered —
// nothing in flight is dropped. drain() returning proves the queue hit
// zero; the counters must agree (admitted == processed).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig sharded_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 2;
  config.shards = 4;  // real decision-layer concurrency for the storm
  return config;
}

std::vector<SubmitRequest> storm_requests(std::uint32_t connection,
                                          std::uint64_t count) {
  LoadGenConfig config;
  config.seed = 21;
  config.connections = 16;
  config.catalog_specs = 40;
  config.max_initial_selection = 30;
  static const std::vector<SubmitRequest> catalog =
      make_catalog(repo(), config);
  std::vector<SubmitRequest> requests;
  for (const TraceEntry& entry :
       make_trace(config, catalog.size(), connection, count)) {
    requests.push_back(catalog[entry.spec]);
    requests.back().client_id = entry.client_id;
  }
  return requests;
}

// Parks every admitted frame's worker until release() — saturates the
// bounded queue deterministically.
class Gate {
 public:
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void release() {
    {
      std::scoped_lock lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ServeConcurrency, ParallelClientsAllServed) {
  constexpr std::uint32_t kClients = 8;
  constexpr std::uint64_t kPerClient = 150;

  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 4;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.connect(server.port()).ok());
      for (const SubmitRequest& request : storm_requests(c, kPerClient)) {
        const auto reply = client.submit(request);
        ASSERT_TRUE(reply.ok()) << reply.error().message;
        EXPECT_EQ(reply.value().client_id, request.client_id);
        served.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  server.drain();
  const ServeCounters counters = server.counters();
  EXPECT_EQ(served.load(), kClients * kPerClient);
  EXPECT_EQ(counters.requests_served, kClients * kPerClient);
  EXPECT_EQ(counters.frames_admitted, counters.frames_processed);
  EXPECT_EQ(counters.connections_accepted, kClients);
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  EXPECT_EQ(counters.rejected_draining, 0u);
  // Decision layer saw exactly the served requests.
  EXPECT_EQ(landlord.counters().requests, kClients * kPerClient);
  server.stop();
}

TEST(ServeConcurrency, MidStormDrainDropsNothing) {
  constexpr std::uint32_t kClients = 6;

  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 4;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> turned_away{0};
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.connect(server.port()).ok());
      // Submit until the drain turns us away (rejected / drained / socket
      // gone all surface as a failed Result).
      for (const SubmitRequest& request : storm_requests(c, 100000)) {
        const auto reply = client.submit(request);
        if (!reply.ok()) {
          turned_away.fetch_add(1);
          break;
        }
        ok.fetch_add(1);
      }
    });
  }

  // Let the storm get going, then drain in the middle of it.
  while (ok.load() < 200) std::this_thread::yield();
  server.drain();
  EXPECT_TRUE(server.draining());
  for (auto& thread : threads) thread.join();

  // drain() returned with clients still hammering: every admitted frame
  // must still have been answered, and nothing may be left in flight.
  EXPECT_EQ(server.queue_depth(), 0u);
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.frames_admitted, counters.frames_processed);
  EXPECT_EQ(counters.requests_served, ok.load());
  EXPECT_EQ(turned_away.load(), kClients);
  // The decision layer processed exactly the acknowledged requests —
  // no submit was half-applied.
  EXPECT_EQ(landlord.counters().requests, ok.load());

  // No accepts after drain: the listener is gone.
  Client late;
  EXPECT_FALSE(late.connect(server.port()).ok());
  server.stop();
}

TEST(ServeConcurrency, DrainWaitsForInFlightFrames) {
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 2;
  config.max_queue = 8;
  Server server(landlord, config);
  Gate gate;
  server.set_process_test_hook([&gate] { gate.wait(); });
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = storm_requests(0, 2);
  const std::uint64_t id_a = client.next_request_id();
  const std::uint64_t id_b = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(id_a, requests[0])));
  ASSERT_TRUE(client.send_frame(encode_submit(id_b, requests[1])));
  while (server.queue_depth() < 2) std::this_thread::yield();

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    server.drain();
    drained.store(true);
  });
  // The drain must block while both admitted frames are parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(drained.load());

  gate.release();
  drainer.join();
  EXPECT_TRUE(drained.load());

  // The client reads both placements (order free — two workers), then
  // the drain goodbye.
  std::vector<std::uint64_t> reply_ids;
  for (int i = 0; i < 2; ++i) {
    const auto frame = client.recv_frame();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame.value.header.type, FrameType::kPlacement);
    reply_ids.push_back(frame.value.header.request_id);
  }
  EXPECT_TRUE((reply_ids[0] == id_a && reply_ids[1] == id_b) ||
              (reply_ids[0] == id_b && reply_ids[1] == id_a));
  const auto goodbye = client.recv_frame();
  ASSERT_TRUE(goodbye.ok());
  EXPECT_EQ(goodbye.value.header.type, FrameType::kDrained);

  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.frames_admitted, 2u);
  EXPECT_EQ(counters.frames_processed, 2u);
  server.stop();
}

TEST(ServeConcurrency, SubmitsAfterDrainAreRejectedAsDraining) {
  core::Landlord landlord(repo(), sharded_config());
  Server server(landlord, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = storm_requests(0, 1);
  ASSERT_TRUE(client.submit(requests[0]).ok());

  server.drain();
  // First pending read is the drain goodbye pushed by drain() itself.
  const auto goodbye = client.recv_frame();
  ASSERT_TRUE(goodbye.ok());
  EXPECT_EQ(goodbye.value.header.type, FrameType::kDrained);

  // The connection stays up; a new submit gets an explicit rejection.
  const std::uint64_t id = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(id, requests[0])));
  const auto reply = client.recv_frame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value.header.type, FrameType::kRejected);
  EXPECT_EQ(reply.value.reject_reason, RejectReason::kDraining);
  EXPECT_EQ(reply.value.header.request_id, id);
  EXPECT_EQ(server.counters().rejected_draining, 1u);
  server.stop();
}

TEST(ServeConcurrency, SaturatedQueueRejectsExplicitly) {
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 1;
  config.max_queue = 2;
  Server server(landlord, config);
  Gate gate;
  server.set_process_test_hook([&gate] { gate.wait(); });
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = storm_requests(0, 3);

  // Two frames fill the bounded queue (the worker is parked on the
  // first); the third must bounce immediately with queue-full.
  const std::uint64_t id_a = client.next_request_id();
  const std::uint64_t id_b = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(id_a, requests[0])));
  ASSERT_TRUE(client.send_frame(encode_submit(id_b, requests[1])));
  while (server.queue_depth() < 2) std::this_thread::yield();

  const std::uint64_t id_c = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(id_c, requests[2])));
  const auto bounced = client.recv_frame();
  ASSERT_TRUE(bounced.ok());
  ASSERT_EQ(bounced.value.header.type, FrameType::kRejected);
  EXPECT_EQ(bounced.value.reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(bounced.value.header.request_id, id_c);

  // Release the workers: both admitted frames complete normally.
  gate.release();
  for (int i = 0; i < 2; ++i) {
    const auto frame = client.recv_frame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame.value.header.type, FrameType::kPlacement);
  }

  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.rejected_queue_full, 1u);
  EXPECT_EQ(counters.frames_admitted, 2u);
  EXPECT_EQ(counters.queue_depth_peak, 2u);
  server.stop();
}

// A malformed payload draws a typed error and the connection survives; a
// broken header costs the connection but never the server.
TEST(ServeConcurrency, DecodeErrorsAreContained)  {
  core::Landlord landlord(repo(), sharded_config());
  Server server(landlord, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  // Well-formed header, corrupt submit payload (truncated package list).
  std::string bad = encode_submit(9, storm_requests(0, 1)[0]);
  bad.resize(kHeaderSize + 6);
  bad[4] = 6;  // patch payload_size (offset 4, little-endian) to match
  bad[5] = 0;
  bad[6] = 0;
  bad[7] = 0;
  ASSERT_TRUE(client.send_frame(bad));
  const auto reply = client.recv_frame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value.header.type, FrameType::kError);
  EXPECT_EQ(reply.value.error_status, DecodeStatus::kTruncated);

  // The same connection still serves valid traffic afterwards.
  ASSERT_TRUE(client.ping().ok());
  EXPECT_EQ(server.counters().decode_errors, 1u);
  server.stop();
}

}  // namespace
}  // namespace landlord::serve
