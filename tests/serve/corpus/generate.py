#!/usr/bin/env python3
"""Regenerates the wire-protocol frame corpus.

The corpus is checked in so the codec test (codec_corpus_test.cpp)
exercises byte-exact, reviewable inputs; this script documents how each
file was derived and recreates it deterministically. The frame grammar
lives in src/serve/protocol.cpp / docs/serve.md: a 16-byte little-endian
header (u16 magic "PL" 0x4C50, u8 version, u8 type, u32 payload size,
u64 request id) followed by a typed payload.

Each file is named `<expected-status>__<description>.bin`, where
expected-status is the serve::to_string(DecodeStatus) spelling the
decoder must return for that input (decoded against a 64-package
universe). `ok__*` files must decode cleanly.

Usage: python3 generate.py   (from this directory)
"""

import os
import struct

MAGIC = 0x4C50
VERSION = 1

SUBMIT = 1
PLACEMENT = 2
BATCH_SUBMIT = 3
BATCH_PLACEMENT = 4
PING = 5
PONG = 6
STATS = 7
STATS_REPLY = 8
REJECTED = 9
DRAINED = 10
ERROR = 11


def header(ftype, payload_size, request_id=7, magic=MAGIC, version=VERSION):
    return struct.pack("<HBBIQ", magic, version, ftype, payload_size,
                       request_id)


def frame(ftype, payload=b"", **kwargs):
    return header(ftype, len(payload), **kwargs) + payload


def string(s):
    return struct.pack("<H", len(s)) + s.encode()


def submit_payload(client_id, packages, constraints=()):
    out = struct.pack("<QI", client_id, len(packages))
    for p in packages:
        out += struct.pack("<I", p)
    out += struct.pack("<H", len(constraints))
    for op, name, version in constraints:
        out += struct.pack("<B", op) + string(name) + string(version)
    return out


def placement_payload(client_id=3, kind=0, flags=0, retries=0, image=42,
                      image_bytes=1 << 30, requested=1 << 29,
                      prep=1.5, error=""):
    return (struct.pack("<QBBI", client_id, kind, flags, retries) +
            struct.pack("<QQQd", image, image_bytes, requested, prep) +
            string(error))


FILES = {}

# ---- Well-formed frames (decode must return ok) ----
FILES["ok__ping.bin"] = frame(PING)
FILES["ok__pong.bin"] = frame(PONG)
FILES["ok__stats_request.bin"] = frame(STATS)
FILES["ok__drained.bin"] = frame(DRAINED)
FILES["ok__submit.bin"] = frame(
    SUBMIT, submit_payload(11, [1, 5, 9], [(0, "python", "3.8")]))
FILES["ok__submit_empty_spec.bin"] = frame(SUBMIT, submit_payload(0, []))
FILES["ok__batch_submit.bin"] = frame(
    BATCH_SUBMIT,
    struct.pack("<I", 2) + submit_payload(1, [2, 3]) + submit_payload(2, [63]))
FILES["ok__batch_submit_zero.bin"] = frame(BATCH_SUBMIT, struct.pack("<I", 0))
FILES["ok__placement.bin"] = frame(PLACEMENT, placement_payload())
FILES["ok__placement_failed.bin"] = frame(
    PLACEMENT, placement_payload(kind=2, flags=3, error="ladder exhausted"))
FILES["ok__batch_placement.bin"] = frame(
    BATCH_PLACEMENT,
    struct.pack("<I", 2) + placement_payload() + placement_payload(kind=1))
FILES["ok__stats_reply.bin"] = frame(
    STATS_REPLY, struct.pack("<12Q2d", *range(12), 0.25, 99.5))
FILES["ok__rejected_queue_full.bin"] = frame(REJECTED, struct.pack("<B", 1))
FILES["ok__rejected_draining.bin"] = frame(REJECTED, struct.pack("<B", 2))
FILES["ok__error.bin"] = frame(ERROR, struct.pack("<B", 4))

# ---- Header-level rejections ----
FILES["short-header__empty.bin"] = b""
FILES["short-header__8bytes.bin"] = header(PING, 0)[:8]
FILES["short-header__15bytes.bin"] = header(PING, 0)[:15]
FILES["bad-magic__zeros.bin"] = frame(PING, magic=0)
FILES["bad-magic__swapped.bin"] = frame(PING, magic=0x504C)
FILES["bad-version__v0.bin"] = frame(PING, version=0)
# Version 2 is live (deadline/dedup submit prefix); 3 is the first
# unknown version again.
FILES["bad-version__v3.bin"] = frame(PING, version=3)
FILES["bad-type__0.bin"] = frame(0)
FILES["bad-type__99.bin"] = frame(99)
# Payload length beyond kMaxPayloadBytes (8 MiB): the header alone must
# be refused before any allocation. No payload bytes follow.
FILES["oversized__9mib.bin"] = header(PING, 9 << 20)
# Hostile maximum: a u32-max payload claim must die at the header too.
FILES["oversized__u32max.bin"] = header(SUBMIT, (1 << 32) - 1)

# ---- Payload-length violations ----
# Header says 64 payload bytes; only 10 arrive.
FILES["truncated__payload_missing.bin"] = header(SUBMIT, 64) + b"\x00" * 10
# Submit claims 50 packages (within the 64-package universe, so the
# range check passes); payload holds 2.
FILES["truncated__submit_packages_cut.bin"] = frame(
    SUBMIT, struct.pack("<QI", 1, 50) + struct.pack("<II", 1, 2))
# Constraint string length runs past the payload end.
FILES["truncated__constraint_string_cut.bin"] = frame(
    SUBMIT,
    struct.pack("<QI", 1, 0) + struct.pack("<H", 1) + struct.pack("<B", 0) +
    struct.pack("<H", 200) + b"abc")
# Stats reply with only 10 of 12 u64s (and no doubles).
FILES["truncated__stats_cut.bin"] = frame(
    STATS_REPLY, struct.pack("<10Q", *range(10)))
# Rejected frame with an empty payload (reason byte missing).
FILES["truncated__rejected_empty.bin"] = frame(REJECTED)
# Placement cut mid-double.
FILES["truncated__placement_cut.bin"] = frame(
    PLACEMENT, placement_payload()[:40])
# Ping must have an empty payload.
FILES["trailing-bytes__ping_payload.bin"] = frame(PING, b"\xde\xad\xbe\xef")
# Valid submit with 4 unconsumed bytes after the constraint table.
FILES["trailing-bytes__submit_extra.bin"] = frame(
    SUBMIT, submit_payload(1, [4]) + b"\x00" * 4)
# Rejected payload longer than its single reason byte.
FILES["trailing-bytes__rejected_extra.bin"] = frame(
    REJECTED, struct.pack("<B", 1) + b"\x00")
# Two complete frames in one buffer: decode_frame takes exactly one
# frame, so a caller that fails to slice at header-declared length (the
# pipelined reassembly loop's job) sees the second frame as trailing
# garbage rather than silently losing it.
FILES["trailing-bytes__two_frames.bin"] = (
    frame(PING) + frame(PING, request_id=8))

# ---- Protocol v2 (dedup/deadline submit prefix) ----
def v2_prefix(session_id, deadline_ms):
    return struct.pack("<QI", session_id, deadline_ms)

# v2 submit: [session_id][deadline_ms] then the v1 submit payload.
FILES["ok__submit_v2.bin"] = frame(
    SUBMIT, v2_prefix(0xABCD, 250) + submit_payload(11, [1, 5, 9]),
    version=2)
FILES["ok__batch_submit_v2.bin"] = frame(
    BATCH_SUBMIT,
    v2_prefix(7, 0) + struct.pack("<I", 1) + submit_payload(1, [2, 3]),
    version=2)
# v2 replies carry no prefix: a version-2 placement is plain v1 payload.
FILES["ok__placement_v2.bin"] = frame(
    PLACEMENT, placement_payload(), version=2)
# The 12-byte prefix itself cut short.
FILES["truncated__submit_v2_prefix_cut.bin"] = frame(
    SUBMIT, v2_prefix(1, 1)[:6], version=2)

# ---- Semantic violations ----
FILES["batch-too-large__5000.bin"] = frame(
    BATCH_SUBMIT, struct.pack("<I", 5000))
# Package id 1048576 against the 64-package test universe.
FILES["package-out-of-range__id_huge.bin"] = frame(
    SUBMIT, submit_payload(1, [3, 1 << 20]))
# Package count alone exceeding the universe is rejected before reading
# ids (a hostile count cannot force a huge reserve).
FILES["package-out-of-range__count_huge.bin"] = frame(
    SUBMIT, struct.pack("<QI", 1, 1 << 24))
FILES["unsorted-packages__descending.bin"] = frame(
    SUBMIT, submit_payload(1, [9, 5]))
FILES["unsorted-packages__duplicate.bin"] = frame(
    SUBMIT, submit_payload(1, [5, 5]))
FILES["string-too-long__constraint_name.bin"] = frame(
    SUBMIT,
    struct.pack("<QI", 1, 0) + struct.pack("<H", 1) + struct.pack("<B", 0) +
    struct.pack("<H", 5000) + b"x" * 5000 + string("1.0"))
FILES["bad-constraint-op__6.bin"] = frame(
    SUBMIT, submit_payload(1, [1], [(6, "python", "3.8")]))
FILES["bad-kind__9.bin"] = frame(PLACEMENT, placement_payload(kind=9))
FILES["bad-reason__rejected_0.bin"] = frame(REJECTED, struct.pack("<B", 0))
FILES["bad-reason__rejected_99.bin"] = frame(REJECTED, struct.pack("<B", 99))
FILES["bad-reason__error_status_99.bin"] = frame(
    ERROR, struct.pack("<B", 99))


def main():
    out_dir = os.path.dirname(os.path.abspath(__file__))
    for name, data in sorted(FILES.items()):
        with open(os.path.join(out_dir, name), "wb") as f:
            f.write(data)
    print(f"wrote {len(FILES)} corpus files to {out_dir}")


if __name__ == "__main__":
    main()
