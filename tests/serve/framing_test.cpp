// Framing-edge suite for the rebuilt serve I/O path: the rolling
// reassembly buffer, the short-write/EINTR behaviour of the write
// helpers over a socketpair, pipelined wire patterns a well-behaved but
// aggressive client can produce (1-byte drip, many frames per send,
// pings interleaved mid-batch), spec-granular admission accounting, and
// per-connection pipelining backpressure.

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/buffer.hpp"
#include "serve/client.hpp"
#include "serve/io.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

// ---- RollingBuffer ----

TEST(RollingBuffer, ProduceConsumeCycle) {
  RollingBuffer buffer;
  EXPECT_EQ(buffer.readable(), 0u);
  buffer.ensure_writable(5);
  std::memcpy(buffer.write_ptr(), "hello", 5);
  buffer.commit(5);
  EXPECT_EQ(buffer.view(), "hello");
  buffer.consume(2);
  EXPECT_EQ(buffer.view(), "llo");
  buffer.consume(3);
  EXPECT_EQ(buffer.readable(), 0u);
  // Consuming to empty rewinds the cursors: the full capacity is
  // writable again without any compaction.
  EXPECT_EQ(buffer.writable(), buffer.capacity());
}

TEST(RollingBuffer, CompactionReclaimsConsumedPrefix) {
  RollingBuffer buffer;
  buffer.ensure_writable(1);
  const std::size_t cap = buffer.capacity();
  // Fill to capacity, consume almost everything, then ask for more room
  // than the tail offers: the surviving bytes must compact, not grow.
  std::string fill(cap, 'x');
  fill[cap - 2] = 'a';
  fill[cap - 1] = 'b';
  std::memcpy(buffer.write_ptr(), fill.data(), cap);
  buffer.commit(cap);
  buffer.consume(cap - 2);
  buffer.ensure_writable(16);
  EXPECT_EQ(buffer.capacity(), cap);  // compacted in place
  EXPECT_EQ(buffer.view(), "ab");
  EXPECT_GE(buffer.writable(), 16u);
}

TEST(RollingBuffer, GrowthPreservesUnconsumedBytesWithNonZeroHead) {
  RollingBuffer buffer;
  buffer.ensure_writable(1);
  const std::size_t cap = buffer.capacity();
  std::string fill;
  for (std::size_t i = 0; i < cap; ++i) {
    fill.push_back(static_cast<char>('a' + (i % 26)));
  }
  std::memcpy(buffer.write_ptr(), fill.data(), cap);
  buffer.commit(cap);
  // Consume a small prefix: head > 0 but less than half, so compaction
  // alone cannot satisfy a large request — growth must relocate the
  // unconsumed bytes intact.
  buffer.consume(10);
  buffer.ensure_writable(cap);
  EXPECT_GE(buffer.writable(), cap);
  EXPECT_EQ(buffer.view(), std::string_view(fill).substr(10));
}

// ---- write helpers over a socketpair ----

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  /// Shrinks the writer-side send buffer so multi-hundred-KB payloads
  /// force short writes and EAGAIN/poll round trips.
  void tiny_send_buffer() {
    int bytes = 1;  // kernel clamps to its minimum, still tiny
    ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &bytes,
                           sizeof(bytes)),
              0);
  }
};

std::string drain_exactly(int fd, std::size_t want) {
  std::string got(want, '\0');
  std::size_t have = 0;
  while (have < want) {
    const ssize_t r = ::read(fd, got.data() + have, want - have);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    have += static_cast<std::size_t>(r);
  }
  got.resize(have);
  return got;
}

void nop_handler(int) {}

/// Installs a SIGUSR1 handler WITHOUT SA_RESTART for this process, so a
/// pthread_kill lands as a genuine EINTR in any blocking syscall.
void install_eintr_handler() {
  struct sigaction action {};
  action.sa_handler = nop_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the write must see EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &action, nullptr), 0);
}

TEST(ServeIo, WriteAllSurvivesShortWritesAndSignals) {
  install_eintr_handler();
  SocketPair pair;
  pair.tiny_send_buffer();

  std::string payload(512 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 2654435761u);
  }

  std::atomic<bool> writing{true};
  net::IoStatus wrote = net::IoStatus::kError;
  std::thread writer([&] {
    wrote = net::write_all(pair.fds[0], payload.data(), payload.size());
    writing.store(false);
  });
  // Pepper the writer with signals while it squeezes half a megabyte
  // through a minimal send buffer: every write/poll can be interrupted.
  std::thread interrupter([&] {
    while (writing.load()) {
      pthread_kill(writer.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const std::string got = drain_exactly(pair.fds[1], payload.size());
  writer.join();
  interrupter.join();
  EXPECT_EQ(wrote, net::IoStatus::kOk);
  EXPECT_EQ(got, payload);
}

TEST(ServeIo, WritevAllGathersMoreBuffersThanOneSendmsg) {
  install_eintr_handler();
  SocketPair pair;
  pair.tiny_send_buffer();

  // 200 segments (beyond the 64-iovec batch the implementation passes to
  // sendmsg), with empty segments sprinkled in, each segment a distinct
  // run so any reordering or loss is visible in the reassembled stream.
  constexpr std::size_t kSegments = 200;
  std::vector<std::string> segments;
  std::string expected;
  for (std::size_t i = 0; i < kSegments; ++i) {
    const std::size_t size = (i % 7 == 0) ? 0 : 64 + 513 * (i % 11);
    segments.emplace_back(size, static_cast<char>('A' + (i % 23)));
    expected += segments.back();
  }
  std::vector<net::ConstBuffer> buffers;
  for (const std::string& segment : segments) {
    buffers.push_back({segment.data(), segment.size()});
  }

  net::IoStatus wrote = net::IoStatus::kError;
  std::thread writer([&] {
    wrote = net::writev_all(pair.fds[0], buffers);
  });
  const std::string got = drain_exactly(pair.fds[1], expected.size());
  writer.join();
  EXPECT_EQ(wrote, net::IoStatus::kOk);
  EXPECT_EQ(got, expected);
}

TEST(ServeIo, WriteFailsCleanlyOnClosedPeer) {
  SocketPair pair;
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  std::string payload(64 * 1024, 'x');
  EXPECT_EQ(net::write_all(pair.fds[0], payload.data(), payload.size()),
            net::IoStatus::kError);
  const net::ConstBuffer buffer{payload.data(), payload.size()};
  EXPECT_EQ(net::writev_all(pair.fds[0], {&buffer, 1}), net::IoStatus::kError);
}

TEST(ServeIo, WriteStallTimeoutFiresWhenPeerStopsReading) {
  SocketPair pair;
  pair.tiny_send_buffer();
  // Nobody reads fds[1]: the send buffer fills and the bounded write
  // must give up with kTimeout instead of blocking forever.
  std::string payload(512 * 1024, 'y');
  EXPECT_EQ(net::write_all(pair.fds[0], payload.data(), payload.size(),
                           /*stall_timeout_ms=*/50),
            net::IoStatus::kTimeout);
  const net::ConstBuffer buffer{payload.data(), payload.size()};
  EXPECT_EQ(net::writev_all(pair.fds[0], {&buffer, 1},
                            /*stall_timeout_ms=*/50),
            net::IoStatus::kTimeout);
}

TEST(ServeIo, WaitReadableReportsDataAndTimeout) {
  SocketPair pair;
  EXPECT_EQ(net::wait_readable(pair.fds[1], 10), net::IoStatus::kTimeout);
  ASSERT_EQ(::send(pair.fds[0], "x", 1, 0), 1);
  EXPECT_EQ(net::wait_readable(pair.fds[1], 1000), net::IoStatus::kOk);
}

// ---- loopback framing edges ----

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig sharded_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 2;
  config.shards = 4;
  return config;
}

std::vector<SubmitRequest> sample_requests(std::uint64_t count) {
  LoadGenConfig config;
  config.seed = 33;
  config.catalog_specs = 40;
  config.max_initial_selection = 30;
  static const std::vector<SubmitRequest> catalog =
      make_catalog(repo(), config);
  std::vector<SubmitRequest> requests;
  for (const TraceEntry& entry : make_trace(config, catalog.size(), 0, count)) {
    requests.push_back(catalog[entry.spec]);
    requests.back().client_id = entry.client_id;
  }
  return requests;
}

/// The admission and backpressure tests depend on an exact pipeline
/// depth; tier1 re-runs the whole suite with
/// LANDLORD_SERVE_PIPELINE_DEPTH set, which would override ServerConfig
/// and change which frame blocks versus bounces. Pin the config value by
/// clearing the override before the Server constructor reads it.
void pin_pipeline_depth() { unsetenv("LANDLORD_SERVE_PIPELINE_DEPTH"); }

class Gate {
 public:
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void release() {
    {
      std::scoped_lock lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ServeFraming, BatchFrameDrippedOneByteAtATime) {
  core::Landlord landlord(repo(), sharded_config());
  Server server(landlord, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = sample_requests(16);
  const std::uint64_t id = client.next_request_id();
  const std::string frame = encode_batch_submit(id, requests);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(client.send_frame(std::string_view(frame).substr(i, 1)));
  }
  const auto reply = client.recv_frame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value.header.type, FrameType::kBatchPlacement);
  EXPECT_EQ(reply.value.header.request_id, id);
  ASSERT_EQ(reply.value.placements.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(reply.value.placements[i].client_id, requests[i].client_id);
  }
  server.stop();
}

TEST(ServeFraming, ManyFramesInOneSendAllAnswered) {
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 2;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = sample_requests(3);
  std::string wire;
  std::vector<std::uint64_t> ids;
  for (const SubmitRequest& request : requests) {
    ids.push_back(client.next_request_id());
    wire += encode_submit(ids.back(), request);
  }
  ids.push_back(client.next_request_id());
  wire += encode_ping(ids.back());
  ASSERT_TRUE(client.send_frame(wire));  // one send, four frames

  std::map<std::uint64_t, FrameType> replies;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto reply = client.recv_frame();
    ASSERT_TRUE(reply.ok());
    replies[reply.value.header.request_id] = reply.value.header.type;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(replies[ids[i]], FrameType::kPlacement);
  }
  EXPECT_EQ(replies[ids.back()], FrameType::kPong);
  server.stop();
}

TEST(ServeFraming, PingInterleavedMidBatchMatchesByRequestId) {
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 1;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = sample_requests(8);
  const std::span<const SubmitRequest> specs(requests);
  const std::uint64_t batch_a = client.next_request_id();
  const std::uint64_t probe = client.next_request_id();
  const std::uint64_t batch_b = client.next_request_id();
  std::string wire = encode_batch_submit(batch_a, specs.subspan(0, 4));
  wire += encode_ping(probe);  // liveness probe between two batches
  wire += encode_batch_submit(batch_b, specs.subspan(4, 4));
  ASSERT_TRUE(client.send_frame(wire));

  std::map<std::uint64_t, Frame> replies;
  for (int i = 0; i < 3; ++i) {
    auto reply = client.recv_frame();
    ASSERT_TRUE(reply.ok());
    replies[reply.value.header.request_id] = std::move(reply.value);
  }
  ASSERT_EQ(replies.count(probe), 1u);
  EXPECT_EQ(replies[probe].header.type, FrameType::kPong);
  for (const std::uint64_t id : {batch_a, batch_b}) {
    ASSERT_EQ(replies.count(id), 1u);
    EXPECT_EQ(replies[id].header.type, FrameType::kBatchPlacement);
    EXPECT_EQ(replies[id].placements.size(), 4u);
  }
  server.stop();
}

// ---- spec-granular admission ----

TEST(ServeFraming, AdmissionCountsSpecsNotFrames) {
  pin_pipeline_depth();
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 1;
  config.max_queue = 4;  // specs, not frames
  Server server(landlord, config);
  Gate gate;
  server.set_process_test_hook([&gate] { gate.wait(); });
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = sample_requests(8);
  const std::span<const SubmitRequest> specs(requests);

  // A 3-spec batch occupies 3 of the 4 slots (the worker is parked).
  const std::uint64_t first = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_batch_submit(first, specs.subspan(0, 3))));
  while (server.queue_depth() < 3) std::this_thread::yield();

  // A second 3-spec batch would need 6: bounced, even though the old
  // per-frame accounting (2 frames <= 4) would have waved it through.
  const std::uint64_t second = client.next_request_id();
  ASSERT_TRUE(
      client.send_frame(encode_batch_submit(second, specs.subspan(3, 3))));
  const auto bounced = client.recv_frame();
  ASSERT_TRUE(bounced.ok());
  ASSERT_EQ(bounced.value.header.type, FrameType::kRejected);
  EXPECT_EQ(bounced.value.reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(bounced.value.header.request_id, second);

  // A single spec still fits in the remaining slot...
  const std::uint64_t third = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(third, requests[6])));
  while (server.queue_depth() < 4) std::this_thread::yield();
  // ...and the next one over the line bounces.
  const std::uint64_t fourth = client.next_request_id();
  ASSERT_TRUE(client.send_frame(encode_submit(fourth, requests[7])));
  const auto bounced_again = client.recv_frame();
  ASSERT_TRUE(bounced_again.ok());
  ASSERT_EQ(bounced_again.value.header.type, FrameType::kRejected);
  EXPECT_EQ(bounced_again.value.header.request_id, fourth);

  gate.release();
  std::map<std::uint64_t, FrameType> answered;
  for (int i = 0; i < 2; ++i) {
    const auto reply = client.recv_frame();
    ASSERT_TRUE(reply.ok());
    answered[reply.value.header.request_id] = reply.value.header.type;
  }
  EXPECT_EQ(answered[first], FrameType::kBatchPlacement);
  EXPECT_EQ(answered[third], FrameType::kPlacement);

  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.frames_admitted, 2u);
  EXPECT_EQ(counters.specs_admitted, 4u);
  EXPECT_EQ(counters.queue_depth_peak, 4u);
  EXPECT_EQ(counters.rejected_queue_full, 2u);
  EXPECT_EQ(counters.rejected_requests, 4u);
  server.stop();
}

TEST(ServeFraming, OversizeBatchAdmittedAloneOnEmptyQueue) {
  pin_pipeline_depth();
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 1;
  config.max_queue = 2;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  // 5 specs > max_queue 2, but the queue is empty: rejecting would
  // starve the client forever, so the batch runs alone instead.
  const auto requests = sample_requests(5);
  const auto placed = client.submit_batch(requests);
  ASSERT_TRUE(placed.ok()) << placed.error().message;
  EXPECT_EQ(placed.value().size(), 5u);
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.specs_admitted, 5u);
  EXPECT_EQ(counters.queue_depth_peak, 5u);
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  server.stop();
}

// ---- per-connection pipelining backpressure ----

TEST(ServeFraming, PipelineDepthPausesReadsInsteadOfRejecting) {
  pin_pipeline_depth();
  core::Landlord landlord(repo(), sharded_config());
  ServerConfig config;
  config.workers = 1;
  config.pipeline_depth = 2;  // specs in flight per connection
  Server server(landlord, config);
  Gate gate;
  server.set_process_test_hook([&gate] { gate.wait(); });
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.pipeline_depth(), 2u);

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  const auto requests = sample_requests(5);
  std::vector<std::uint64_t> ids;
  std::string wire;
  for (const SubmitRequest& request : requests) {
    ids.push_back(client.next_request_id());
    wire += encode_submit(ids.back(), request);
  }
  // All five frames hit the socket at once; the reader may admit only
  // two specs before parking — backpressure, not rejection.
  ASSERT_TRUE(client.send_frame(wire));
  while (server.queue_depth() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(server.counters().rejected_queue_full, 0u);

  // The stall is per connection: a second client's probe sails through.
  Client probe;
  ASSERT_TRUE(probe.connect(server.port()).ok());
  ASSERT_TRUE(probe.ping().ok());
  probe.close();

  // Releasing the workers drains the pipeline; every frame is answered
  // in submission order (single worker, single connection).
  gate.release();
  for (const std::uint64_t id : ids) {
    const auto reply = client.recv_frame();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value.header.type, FrameType::kPlacement);
    EXPECT_EQ(reply.value.header.request_id, id);
  }
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.requests_served, 5u);
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  server.stop();
}

}  // namespace
}  // namespace landlord::serve
