// Load-generator unit tests: catalog/trace determinism, Zipf popularity
// skew, the millions-of-clients id universe, and small end-to-end closed-
// and open-loop runs against a live server.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "hep/profiles.hpp"
#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

LoadGenConfig base_config() {
  LoadGenConfig config;
  config.seed = 11;
  config.catalog_specs = 50;
  config.max_initial_selection = 30;
  config.clients = 1'000'000;
  return config;
}

TEST(ServeLoadGen, CatalogIsDeterministicAndIncludesHepApps) {
  const auto config = base_config();
  const auto a = make_catalog(repo(), config);
  const auto b = make_catalog(repo(), config);
  EXPECT_EQ(a.size(), config.catalog_specs + hep::benchmark_apps().size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].packages, b[i].packages) << i;
    EXPECT_FALSE(a[i].packages.empty()) << i;
  }

  auto without_hep = config;
  without_hep.include_hep_apps = false;
  EXPECT_EQ(make_catalog(repo(), without_hep).size(), config.catalog_specs);
}

TEST(ServeLoadGen, TraceIsDeterministicPerConnectionAndDivergesAcross) {
  const auto config = base_config();
  const std::size_t catalog = 57;
  const auto a = make_trace(config, catalog, 0, 2000);
  const auto b = make_trace(config, catalog, 0, 2000);
  const auto other = make_trace(config, catalog, 1, 2000);
  ASSERT_EQ(a.size(), 2000u);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec, b[i].spec);
    EXPECT_EQ(a[i].client_id, b[i].client_id);
    EXPECT_LT(a[i].spec, catalog);
    EXPECT_LT(a[i].client_id, config.clients);
    differs |= (a[i].spec != other[i].spec);
  }
  EXPECT_TRUE(differs) << "connections must not replay identical traces";
}

TEST(ServeLoadGen, ZipfSamplingIsHeavyTailed) {
  auto config = base_config();
  config.zipf_s = 1.1;
  const std::size_t catalog = 57;
  std::map<std::uint32_t, std::uint64_t> frequency;
  const auto trace = make_trace(config, catalog, 0, 20000);
  for (const TraceEntry& entry : trace) ++frequency[entry.spec];

  std::vector<std::uint64_t> counts;
  for (const auto& [spec, count] : frequency) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  const double uniform_share =
      static_cast<double>(trace.size()) / static_cast<double>(catalog);
  // Zipf s=1.1 over 57 ranks gives the top spec ~22% of all draws —
  // far above the uniform 1.75%. 5x is a loose, noise-proof floor.
  EXPECT_GT(static_cast<double>(counts.front()), 5.0 * uniform_share);
  // ...while the tail still gets sampled.
  EXPECT_GT(frequency.size(), catalog / 2);
}

TEST(ServeLoadGen, ClientIdsSpanTheConfiguredUniverse) {
  const auto config = base_config();
  const auto trace = make_trace(config, 57, 0, 20000);
  std::vector<std::uint64_t> ids;
  for (const TraceEntry& entry : trace) ids.push_back(entry.client_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  // 20k uniform draws from a 1M universe collide rarely: expect nearly
  // all distinct, spread across the range.
  EXPECT_GT(ids.size(), 19000u);
  EXPECT_GT(ids.back(), config.clients / 2);
}

TEST(ServeLoadGen, ClosedLoopRunReportsAccurately) {
  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = repo().total_bytes() / 2;
  cache_config.shards = 4;
  core::Landlord landlord(repo(), cache_config);
  ServerConfig server_config;
  server_config.workers = 4;
  Server server(landlord, server_config);
  ASSERT_TRUE(server.start().ok());

  auto load = base_config();
  load.port = server.port();
  load.mode = LoadMode::kClosed;
  load.connections = 2;
  load.batch = 8;
  load.total_requests = 512;
  const auto report = run_load(repo(), load);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report.value().requests_sent, load.total_requests);
  EXPECT_EQ(report.value().requests_ok, load.total_requests);
  EXPECT_EQ(report.value().requests_rejected, 0u);
  EXPECT_EQ(report.value().placements_hit + report.value().placements_merge +
                report.value().placements_insert,
            report.value().requests_ok);
  EXPECT_GT(report.value().distinct_clients, 100u);
  EXPECT_GT(report.value().qps, 0.0);
  EXPECT_GT(report.value().duration_seconds, 0.0);
  EXPECT_LE(report.value().latency_p50, report.value().latency_p99);
  EXPECT_LE(report.value().latency_p99, report.value().latency_p999);
  EXPECT_GT(report.value().latency_p50, 0.0);

  // The server agrees it served exactly that load.
  EXPECT_EQ(server.counters().requests_served, load.total_requests);
  server.stop();
}

TEST(ServeLoadGen, OpenLoopRunCompletesAndAccounts) {
  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = repo().total_bytes() / 2;
  cache_config.shards = 4;
  core::Landlord landlord(repo(), cache_config);
  ServerConfig server_config;
  server_config.workers = 4;
  Server server(landlord, server_config);
  ASSERT_TRUE(server.start().ok());

  auto load = base_config();
  load.port = server.port();
  load.mode = LoadMode::kOpen;
  load.connections = 2;
  load.batch = 4;
  load.rate_per_second = 5000;
  load.duration_seconds = 0.3;
  const auto report = run_load(repo(), load);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_GT(report.value().requests_sent, 0u);
  EXPECT_GT(report.value().requests_ok, 0u);
  EXPECT_LE(report.value().requests_ok + report.value().requests_rejected,
            report.value().requests_sent);
  EXPECT_GT(report.value().frames_sent, 0u);
  server.stop();
}

TEST(ServeLoadGen, FailsCleanlyWithNoServer) {
  auto load = base_config();
  load.port = 1;  // nothing listens there
  load.total_requests = 16;
  load.connections = 1;
  const auto report = run_load(repo(), load);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace landlord::serve
