// Loopback equivalence: the same request trace replayed through the TCP
// service plane (server over 127.0.0.1) and through an in-process
// core::Landlord oracle must produce bit-identical results — every
// placement field equal (doubles compared as IEEE-754 bit patterns, not
// approximately), and the decision-layer counters equal field by field.
//
// The determinism contract under test (docs/serve.md): with a
// sequential decision layer the server serialises submits, and with one
// worker and one connection processing order equals arrival order, so
// the network adds nothing but transport.

#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 141);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  // Half the repository: the trace must overflow the budget so the
  // replay exercises evictions and re-inserts, not just hits.
  config.capacity = repo().total_bytes() / 2;
  return config;
}

// The loopback trace: one connection's deterministic loadgen schedule
// over the shared catalog.
struct LoopbackTrace {
  std::vector<SubmitRequest> catalog;
  std::vector<TraceEntry> entries;
};

LoopbackTrace make_loopback_trace(std::uint64_t count) {
  LoadGenConfig config;
  config.seed = 7;
  config.connections = 1;
  config.catalog_specs = 60;
  config.max_initial_selection = 40;
  config.clients = 1'000'000;
  LoopbackTrace trace;
  trace.catalog = make_catalog(repo(), config);
  trace.entries = make_trace(config, trace.catalog.size(), 0, count);
  return trace;
}

SubmitRequest request_for(const LoopbackTrace& trace, const TraceEntry& entry) {
  SubmitRequest request = trace.catalog[entry.spec];
  request.client_id = entry.client_id;
  return request;
}

// Exact comparison, with prep_seconds checked as a bit pattern so a
// formatting round-trip (or -0.0 vs 0.0 drift) cannot hide behind
// floating-point equality.
void expect_bit_identical(const PlacementReply& got,
                          const PlacementReply& want, std::size_t index) {
  EXPECT_EQ(got, want) << "request " << index;
  std::uint64_t got_bits = 0;
  std::uint64_t want_bits = 0;
  std::memcpy(&got_bits, &got.prep_seconds, sizeof(got_bits));
  std::memcpy(&want_bits, &want.prep_seconds, sizeof(want_bits));
  EXPECT_EQ(got_bits, want_bits) << "request " << index;
}

void expect_counters_equal(const core::CacheCounters& got,
                           const core::CacheCounters& want) {
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.hits, want.hits);
  EXPECT_EQ(got.merges, want.merges);
  EXPECT_EQ(got.inserts, want.inserts);
  EXPECT_EQ(got.deletes, want.deletes);
  EXPECT_EQ(got.splits, want.splits);
  EXPECT_EQ(got.conflict_rejections, want.conflict_rejections);
  EXPECT_EQ(got.requested_bytes, want.requested_bytes);
  EXPECT_EQ(got.written_bytes, want.written_bytes);
  EXPECT_EQ(got.container_efficiency_sum, want.container_efficiency_sum);
}

TEST(ServeLoopback, SingleSubmitsMatchInProcessOracle) {
  core::Landlord served(repo(), cache_config());
  core::Landlord oracle(repo(), cache_config());

  ServerConfig server_config;
  server_config.workers = 1;
  Server server(served, server_config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());

  const LoopbackTrace trace = make_loopback_trace(400);
  std::uint64_t kinds[3] = {0, 0, 0};
  for (std::size_t i = 0; i < trace.entries.size(); ++i) {
    const SubmitRequest request = request_for(trace, trace.entries[i]);
    const PlacementReply want = to_reply(
        oracle.submit(to_specification(request, repo().size())),
        request.client_id);
    const auto got = client.submit(request);
    ASSERT_TRUE(got.ok()) << got.error().message;
    expect_bit_identical(got.value(), want, i);
    ++kinds[static_cast<std::size_t>(got.value().kind)];
  }
  // The trace must exercise every decision kind or the equivalence
  // claim is weaker than advertised.
  EXPECT_GT(kinds[0], 0u) << "no hits";
  EXPECT_GT(kinds[2], 0u) << "no inserts";
  EXPECT_GT(kinds[0] + kinds[1] + kinds[2], 0u);

  expect_counters_equal(served.counters(), oracle.counters());
  EXPECT_EQ(served.image_count(), oracle.image_count());
  client.close();
  server.stop();
}

TEST(ServeLoopback, BatchSubmitsMatchInProcessOracle) {
  core::Landlord served(repo(), cache_config());
  core::Landlord oracle(repo(), cache_config());

  ServerConfig server_config;
  server_config.workers = 1;
  Server server(served, server_config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());

  const LoopbackTrace trace = make_loopback_trace(384);
  constexpr std::size_t kBatch = 32;
  for (std::size_t start = 0; start < trace.entries.size(); start += kBatch) {
    std::vector<SubmitRequest> batch;
    std::vector<PlacementReply> want;
    for (std::size_t i = start;
         i < std::min(start + kBatch, trace.entries.size()); ++i) {
      batch.push_back(request_for(trace, trace.entries[i]));
      want.push_back(to_reply(
          oracle.submit(to_specification(batch.back(), repo().size())),
          batch.back().client_id));
    }
    const auto got = client.submit_batch(batch);
    ASSERT_TRUE(got.ok()) << got.error().message;
    ASSERT_EQ(got.value().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_bit_identical(got.value()[i], want[i], start + i);
    }
  }

  expect_counters_equal(served.counters(), oracle.counters());
  client.close();
  server.stop();
}

// The kStatsReply snapshot a client fetches over the wire must equal
// the oracle's counters — the stats path reads the same decision layer
// the submits wrote.
TEST(ServeLoopback, WireStatsMatchOracleCounters) {
  core::Landlord served(repo(), cache_config());
  core::Landlord oracle(repo(), cache_config());

  ServerConfig server_config;
  server_config.workers = 1;
  Server server(served, server_config);
  ASSERT_TRUE(server.start().ok());
  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());

  const LoopbackTrace trace = make_loopback_trace(200);
  for (const TraceEntry& entry : trace.entries) {
    const SubmitRequest request = request_for(trace, entry);
    (void)oracle.submit(to_specification(request, repo().size()));
    ASSERT_TRUE(client.submit(request).ok());
  }

  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const core::CacheCounters want = oracle.counters();
  EXPECT_EQ(stats.value().requests, want.requests);
  EXPECT_EQ(stats.value().hits, want.hits);
  EXPECT_EQ(stats.value().merges, want.merges);
  EXPECT_EQ(stats.value().inserts, want.inserts);
  EXPECT_EQ(stats.value().deletes, want.deletes);
  EXPECT_EQ(stats.value().splits, want.splits);
  EXPECT_EQ(stats.value().conflict_rejections, want.conflict_rejections);
  EXPECT_EQ(stats.value().requested_bytes, want.requested_bytes);
  EXPECT_EQ(stats.value().written_bytes, want.written_bytes);
  EXPECT_EQ(stats.value().image_count, oracle.image_count());
  EXPECT_EQ(stats.value().container_efficiency_sum,
            want.container_efficiency_sum);

  client.close();
  server.stop();
}

// Replaying the identical trace against a fresh server twice must give
// identical placements — the service plane adds no hidden state.
TEST(ServeLoopback, ServerReplayIsDeterministic) {
  const LoopbackTrace trace = make_loopback_trace(150);
  std::vector<PlacementReply> first;
  for (int run = 0; run < 2; ++run) {
    core::Landlord served(repo(), cache_config());
    ServerConfig server_config;
    server_config.workers = 1;
    Server server(served, server_config);
    ASSERT_TRUE(server.start().ok());
    Client client;
    ASSERT_TRUE(client.connect(server.port()).ok());
    std::vector<PlacementReply> replies;
    for (const TraceEntry& entry : trace.entries) {
      const auto got = client.submit(request_for(trace, entry));
      ASSERT_TRUE(got.ok());
      replies.push_back(got.value());
    }
    if (run == 0) {
      first = std::move(replies);
    } else {
      ASSERT_EQ(replies.size(), first.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        expect_bit_identical(replies[i], first[i], i);
      }
    }
    client.close();
    server.stop();
  }
}

}  // namespace
}  // namespace landlord::serve
