// Network-fault suite for the serve plane (label: servefault), written
// to run under TSan and ASan+UBSan (tier1.sh stages 2b / 3).
//
// The contract under test (docs/fault_model.md "Network fault model"):
//
//   * the ChaosProxy shim injects resets, stalls, fragmented deliveries
//     and accept failures on a seeded, replayable schedule;
//   * the server defends itself — read-idle and write-stall timeouts
//     disconnect silent/slow peers instead of wedging readers, writers
//     or the worker pool, and deadline-stamped specs that expire while
//     queued are shed with a typed failure reply;
//   * the retry layer recovers exactly — a closed-loop load-generator
//     run driven through the shim must leave the decision layer in a
//     state BIT-IDENTICAL to a fault-free oracle run of the same trace,
//     with every spec placed exactly once (the dedup window absorbs
//     retransmits whose original reply was lost).

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 2;
  return config;  // sequential decision layer: arrival order is law
}

/// Polls a counter until `pred` holds or `budget` passes. The budget is
/// slack, not pacing: the poll returns the moment the predicate holds,
/// so a generous budget only matters on a sanitizer-slowed or
/// oversubscribed machine.
template <typename Pred>
bool eventually(Pred&& pred,
                std::chrono::seconds budget = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ---- Shim determinism ----

/// Minimal echo upstream: accepts one connection at a time and echoes
/// whatever arrives, so a strict ping-pong client makes the proxy's
/// chunk sequence (and therefore its fault tape) fully deterministic.
class EchoServer {
 public:
  EchoServer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { loop(); });
  }

  ~EchoServer() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void loop() {
    while (true) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener shut down
      char buf[4096];
      while (true) {
        const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
        if (n <= 0) break;
        ssize_t sent = 0;
        while (sent < n) {
          const ssize_t w =
              ::send(conn, buf + sent, static_cast<std::size_t>(n - sent),
                     MSG_NOSIGNAL);
          if (w <= 0) break;
          sent += w;
        }
        if (sent < n) break;
      }
      ::close(conn);
    }
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// One strict ping-pong session through the proxy: send fixed messages,
/// read the echo (or give up on the first failure), reconnecting after
/// every fault, until `messages` echoes came back. Returns the proxy
/// tally.
ChaosTally drive_echo_session(std::uint16_t echo_port,
                              const fault::FaultPlan& plan,
                              int messages) {
  ChaosProxyConfig config;
  config.target_port = echo_port;
  config.plan = plan;
  config.stall_ms = 1;
  ChaosProxy proxy(config);
  EXPECT_TRUE(proxy.start().ok());

  const std::string message(100, 'm');
  int echoed = 0;
  while (echoed < messages) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(proxy.port());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      continue;
    }
    while (echoed < messages) {
      if (::send(fd, message.data(), message.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(message.size())) {
        break;
      }
      std::string got;
      bool dead = false;
      while (got.size() < message.size()) {
        char buf[256];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          dead = true;
          break;
        }
        got.append(buf, static_cast<std::size_t>(n));
      }
      if (dead) break;
      ++echoed;
    }
    ::close(fd);
  }
  proxy.stop();
  return proxy.tally();
}

TEST(ServeChaosProxy, FaultTapeIsReplayableBitForBit) {
  EchoServer echo;
  fault::FaultPlan plan;
  plan.seed = 2024;
  plan.fail(fault::FaultOp::kConnReset, 0.05)
      .fail(fault::FaultOp::kConnStall, 0.05)
      .fail(fault::FaultOp::kPartialDelivery, 0.05)
      .fail(fault::FaultOp::kAcceptFail, 0.10)
      .at(fault::FaultOp::kPartialDelivery, 3)
      .at(fault::FaultOp::kConnReset, 7);

  const ChaosTally first = drive_echo_session(echo.port(), plan, 60);
  const ChaosTally second = drive_echo_session(echo.port(), plan, 60);

  // Scheduled faults guarantee the run is not accidentally fault-free.
  EXPECT_GT(first.injected(), 0u);
  // Same plan, same strict request/response chunk sequence: the whole
  // fault tape — and everything it caused — replays identically.
  EXPECT_EQ(first.connections, second.connections);
  EXPECT_EQ(first.accept_failures, second.accept_failures);
  EXPECT_EQ(first.resets, second.resets);
  EXPECT_EQ(first.stalls, second.stalls);
  EXPECT_EQ(first.partials, second.partials);
  EXPECT_EQ(first.chunks, second.chunks);
  EXPECT_EQ(first.forwarded_bytes, second.forwarded_bytes);

  // A different seed must produce a different tape (not a constant).
  fault::FaultPlan other = plan;
  other.seed = 2025;
  const ChaosTally third = drive_echo_session(echo.port(), other, 60);
  EXPECT_FALSE(third.resets == first.resets &&
               third.stalls == first.stalls &&
               third.partials == first.partials &&
               third.accept_failures == first.accept_failures &&
               third.chunks == first.chunks);
}

// ---- The oracle equivalence suite ----

struct RunOutcome {
  LoadGenReport report;
  ServeCounters counters;
  StatsReply stats;
};

/// Runs the closed-loop retrying loadgen against a fresh server —
/// optionally through a chaos proxy — and snapshots everything.
RunOutcome run_once(const fault::FaultPlan* plan) {
  core::Landlord landlord(repo(), cache_config());
  ServerConfig server_config;
  server_config.workers = 1;  // arrival order == processing order
  server_config.max_queue = 4096;
  Server server(landlord, server_config);
  EXPECT_TRUE(server.start().ok());

  ChaosProxy* proxy = nullptr;
  ChaosProxyConfig proxy_config;
  std::unique_ptr<ChaosProxy> owned;
  if (plan != nullptr) {
    proxy_config.target_port = server.port();
    proxy_config.plan = *plan;
    proxy_config.stall_ms = 5;
    owned = std::make_unique<ChaosProxy>(proxy_config);
    EXPECT_TRUE(owned->start().ok());
    proxy = owned.get();
  }

  LoadGenConfig load;
  load.port = proxy != nullptr ? proxy->port() : server.port();
  load.seed = 11;
  load.mode = LoadMode::kClosed;
  load.connections = 1;  // one deterministic stream for the oracle
  load.batch = 16;
  load.total_requests = 480;
  load.catalog_specs = 40;
  load.max_initial_selection = 30;
  load.clients = 100'000;
  RetryPolicy retry;
  retry.backoff.max_retries = 12;
  retry.backoff.base_delay_s = 0.2;
  retry.backoff_scale = 0.0;  // record the schedule, skip the sleeps
  retry.reply_timeout_ms = 1000;
  load.retry = retry;

  const auto report = run_load(repo(), load);
  EXPECT_TRUE(report.ok()) << report.error().message;

  RunOutcome out;
  out.report = report.ok() ? report.value() : LoadGenReport{};

  // Snapshot the decision layer through the wire (bypassing the proxy):
  // StatsReply has operator==, so the oracle comparison is bit-exact.
  Client direct;
  EXPECT_TRUE(direct.connect(server.port()).ok());
  const auto stats = direct.stats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) out.stats = stats.value();
  direct.close();

  if (proxy != nullptr) {
    const ChaosTally tally = proxy->tally();
    EXPECT_GT(tally.injected(), 0u) << "chaos run injected nothing";
    proxy->stop();
  }
  server.drain();  // must return: no admitted frame may wedge
  server.stop();
  out.counters = server.counters();
  return out;
}

TEST(ServeNetFault, ChaosRunMatchesFaultFreeOracleExactly) {
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.fail(fault::FaultOp::kConnReset, 0.01)
      .fail(fault::FaultOp::kConnStall, 0.005)
      .fail(fault::FaultOp::kPartialDelivery, 0.01)
      .fail(fault::FaultOp::kAcceptFail, 0.10)
      .at(fault::FaultOp::kPartialDelivery, 2)
      .at(fault::FaultOp::kConnReset, 9);

  const RunOutcome oracle = run_once(nullptr);
  const RunOutcome chaos = run_once(&plan);

  // The fault-free oracle run answered everything without retries.
  EXPECT_EQ(oracle.report.requests_ok, 480u);
  EXPECT_EQ(oracle.report.retransmits, 0u);
  EXPECT_EQ(oracle.report.requests_rejected, 0u);

  // The chaos run answered everything too — through retransmits.
  EXPECT_EQ(chaos.report.requests_ok, 480u);
  EXPECT_EQ(chaos.report.requests_rejected, 0u);
  EXPECT_GT(chaos.report.retransmits, 0u);

  // No double placement, no loss: the decision layer's end state is
  // bit-identical to the oracle's. Every field, including the float
  // accumulators, because the executed request sequence is identical.
  EXPECT_EQ(chaos.stats, oracle.stats);

  // Same per-kind placement mix on the wire.
  EXPECT_EQ(chaos.report.placements_hit, oracle.report.placements_hit);
  EXPECT_EQ(chaos.report.placements_merge, oracle.report.placements_merge);
  EXPECT_EQ(chaos.report.placements_insert, oracle.report.placements_insert);

  // Server-side: exactly the trace's specs were executed, once each;
  // lost replies were answered from the window, not re-placed.
  EXPECT_EQ(chaos.counters.requests_served, 480u);
  EXPECT_EQ(oracle.counters.requests_served, 480u);
  EXPECT_EQ(oracle.counters.dedup_hits, 0u);
  EXPECT_EQ(chaos.counters.specs_shed_expired, 0u);
}

// ---- Server-side defense ----

TEST(ServeNetFault, ReadIdleTimeoutDisconnectsSilentClient) {
  core::Landlord landlord(repo(), cache_config());
  ServerConfig config;
  config.workers = 1;
  config.read_idle_timeout_ms = 30;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  // Send nothing. The server must hang up on its own.
  ASSERT_TRUE(eventually(
      [&] { return server.counters().net_read_timeouts >= 1; }));
  // The close is visible client-side as EOF.
  const Decoded<Frame> eof = client.recv_frame_within(1000);
  EXPECT_FALSE(eof.ok());
  client.close();

  // An *active* client is not a victim: pings keep the connection alive
  // through many timeout windows.
  Client active;
  ASSERT_TRUE(active.connect(server.port()).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(active.ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  active.close();
  server.stop();
  EXPECT_GE(server.counters().net_read_timeouts, 1u);
}

TEST(ServeNetFault, WriteStallTimeoutShedsNonReadingClient) {
  core::Landlord landlord(repo(), cache_config());
  ServerConfig config;
  config.workers = 2;
  config.max_queue = 1 << 14;
  config.write_stall_timeout_ms = 50;
  config.so_sndbuf = 4096;  // tiny server-side buffer: stall fast
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  LoadGenConfig load;
  load.seed = 11;
  load.catalog_specs = 40;
  load.max_initial_selection = 30;
  const auto catalog = make_catalog(repo(), load);

  // A raw slow-loris: tiny receive window, pipelines big batches, never
  // reads a single reply byte.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 2048;  // must be set before connect to clamp the window
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::vector<SubmitRequest> batch;
  for (std::size_t i = 0; i < 256; ++i) {
    batch.push_back(catalog[i % catalog.size()]);
    batch.back().client_id = i;
  }
  std::string wire;
  for (std::uint64_t id = 1; id <= 32; ++id) {
    wire += encode_batch_submit(id, batch);
  }
  // Feed frames until the server gives up on us (our own send may stall
  // once the server stops reading — keep it bounded and non-blocking).
  // The 30 s budgets are slack for TSan/ASan slowdown, not expected
  // runtime: the loop and the poll both exit the moment the server's
  // write-stall counter trips (~50 ms after the first reply flush jams).
  std::size_t sent = 0;
  const auto send_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sent < wire.size() &&
         server.counters().net_write_timeouts == 0 &&
         std::chrono::steady_clock::now() < send_deadline) {
    const ssize_t w = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      break;  // server already cut us off
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(eventually(
      [&] { return server.counters().net_write_timeouts >= 1; },
      std::chrono::seconds(30)));
  ::close(fd);

  // The stalled connection died but the server did not: a well-behaved
  // client is still served, and drain() returns (no wedged workers).
  Client healthy;
  ASSERT_TRUE(healthy.connect(server.port()).ok());
  EXPECT_TRUE(healthy.ping().ok());
  auto placed = healthy.submit(catalog[0]);
  EXPECT_TRUE(placed.ok());
  healthy.close();
  server.drain();
  server.stop();
  EXPECT_GE(server.counters().net_write_timeouts, 1u);
}

TEST(ServeNetFault, ExpiredDeadlineShedsSpecsWithTypedReply) {
  core::Landlord landlord(repo(), cache_config());
  ServerConfig config;
  config.workers = 1;
  Server server(landlord, config);
  ASSERT_TRUE(server.start().ok());

  LoadGenConfig load;
  load.seed = 11;
  load.catalog_specs = 20;
  load.max_initial_selection = 20;
  const auto catalog = make_catalog(repo(), load);

  // Park processing past the 20 ms budget, so the spec expires in queue.
  server.set_process_test_hook(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(60)); });

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  ASSERT_TRUE(client.send_frame(
      encode_submit_v2(1, catalog[0], /*session_id=*/9, /*deadline_ms=*/20)));
  const Decoded<Frame> shed = client.recv_frame();
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed.value.header.type, FrameType::kPlacement);
  ASSERT_EQ(shed.value.placements.size(), 1u);
  EXPECT_TRUE(shed.value.placements[0].failed);
  EXPECT_EQ(shed.value.placements[0].error, "deadline-expired");

  // No deadline (v2 with 0, and plain v1) → never shed, even while slow.
  ASSERT_TRUE(client.send_frame(
      encode_submit_v2(2, catalog[1], /*session_id=*/9, /*deadline_ms=*/0)));
  const Decoded<Frame> placed_v2 = client.recv_frame();
  ASSERT_TRUE(placed_v2.ok());
  EXPECT_FALSE(placed_v2.value.placements[0].failed);
  server.set_process_test_hook({});
  ASSERT_TRUE(client.send_frame(encode_submit(3, catalog[2])));
  const Decoded<Frame> placed_v1 = client.recv_frame();
  ASSERT_TRUE(placed_v1.ok());
  EXPECT_FALSE(placed_v1.value.placements[0].failed);

  client.close();
  server.stop();
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.specs_shed_expired, 1u);
  // A shed spec is admitted but not served; the other two were served.
  EXPECT_EQ(counters.requests_served, 2u);
  EXPECT_EQ(counters.specs_admitted, 3u);
}

}  // namespace
}  // namespace landlord::serve
