// Obs reconciliation: after a load-generator run, an obs::Registry
// snapshot of the serve_* metric families must equal Server::counters()
// exactly — not approximately. Counters and metric handles are bumped by
// the same helper in the same call, so any drift means an instrumented
// path forgot its twin.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include <gtest/gtest.h>

#include "landlord/landlord.hpp"
#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 2;
  config.shards = 4;
  return config;
}

void expect_series(const std::map<std::string, double>& snap,
                   const std::string& series, std::uint64_t want) {
  const auto it = snap.find(series);
  ASSERT_NE(it, snap.end()) << "series missing: " << series;
  EXPECT_EQ(static_cast<std::uint64_t>(it->second), want) << series;
}

TEST(ServeObsReconcile, RegistryMatchesServerCountersAfterLoadgenRun) {
  core::Landlord landlord(repo(), cache_config());
  obs::Observability obs;

  ServerConfig server_config;
  server_config.workers = 4;
  Server server(landlord, server_config);
  server.set_observability(&obs);
  ASSERT_TRUE(server.start().ok());

  LoadGenConfig load;
  load.port = server.port();
  load.seed = 5;
  load.mode = LoadMode::kClosed;
  load.connections = 4;
  load.batch = 16;
  load.total_requests = 2000;
  load.catalog_specs = 50;
  load.max_initial_selection = 30;
  load.clients = 500'000;
  const auto report = run_load(repo(), load);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().requests_ok, load.total_requests);

  // Exercise the non-submit instrumented paths too.
  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  ASSERT_TRUE(client.ping().ok());
  ASSERT_TRUE(client.stats().ok());
  client.close();

  // stop() quiesces everything: all frames answered, all connections
  // reaped, so both sides of the comparison are final.
  server.stop();

  const ServeCounters c = server.counters();
  const auto snap = obs.registry.snapshot();

  expect_series(snap, "serve_connections_total{state=\"accepted\"}",
                c.connections_accepted);
  expect_series(snap, "serve_connections_total{state=\"closed\"}",
                c.connections_closed);
  expect_series(snap, "serve_frames_total{direction=\"in\"}", c.frames_in);
  expect_series(snap, "serve_frames_total{direction=\"out\"}", c.frames_out);
  expect_series(snap, "serve_bytes_total{direction=\"in\"}", c.bytes_in);
  expect_series(snap, "serve_bytes_total{direction=\"out\"}", c.bytes_out);
  expect_series(snap, "serve_frames_admitted_total", c.frames_admitted);
  expect_series(snap, "serve_specs_admitted_total", c.specs_admitted);
  expect_series(snap, "serve_frames_processed_total", c.frames_processed);
  expect_series(snap, "serve_requests_served_total", c.requests_served);
  expect_series(snap, "serve_batches_total", c.batches);
  expect_series(snap, "serve_gathered_writes_total", c.gathered_writes);
  expect_series(snap, "serve_rejected_total{reason=\"queue-full\"}",
                c.rejected_queue_full);
  expect_series(snap, "serve_rejected_total{reason=\"draining\"}",
                c.rejected_draining);
  expect_series(snap, "serve_rejected_requests_total", c.rejected_requests);
  expect_series(snap, "serve_decode_errors_total", c.decode_errors);
  expect_series(snap, "serve_pings_total", c.pings);
  expect_series(snap, "serve_stats_requests_total", c.stats_requests);
  expect_series(snap, "serve_placements_total{kind=\"hit\"}",
                c.placements_hit);
  expect_series(snap, "serve_placements_total{kind=\"merge\"}",
                c.placements_merge);
  expect_series(snap, "serve_placements_total{kind=\"insert\"}",
                c.placements_insert);
  expect_series(snap, "serve_placements_degraded_total",
                c.placements_degraded);
  expect_series(snap, "serve_placements_failed_total", c.placements_failed);
  expect_series(snap, "serve_net_read_idle_timeouts_total",
                c.net_read_timeouts);
  expect_series(snap, "serve_net_write_stall_timeouts_total",
                c.net_write_timeouts);
  expect_series(snap, "serve_net_write_errors_total", c.net_write_errors);
  expect_series(snap, "serve_dedup_hits_total", c.dedup_hits);
  expect_series(snap, "serve_dedup_evictions_total", c.dedup_evictions);
  expect_series(snap, "serve_deadline_shed_total", c.specs_shed_expired);
  // The peak gauge is published only through monotone raises (tally CAS
  // + Gauge::max_to of the same values), so at quiescence the two sides
  // agree exactly — a stale set() after the CAS loop used to break this.
  expect_series(snap, "serve_queue_depth_peak", c.queue_depth_peak);
  // The live depth gauge moves by exact +/-spec deltas at the same
  // accounting sites as the atomics, so a quiesced server reads zero.
  expect_series(snap, "serve_queue_depth", 0);
  EXPECT_EQ(server.queue_depth(), 0u);
  // Histograms: one batch-size sample per admitted frame, one duration
  // sample per processed frame, one gather-size sample per reply flush.
  expect_series(snap, "serve_batch_size_count", c.frames_admitted);
  expect_series(snap, "serve_process_seconds_count", c.frames_processed);
  expect_series(snap, "serve_gather_frames_count", c.gathered_writes);

  // Cross-checks against the run itself: the counters are not just
  // self-consistent but reflect the load that was actually offered.
  EXPECT_EQ(c.requests_served,
            load.total_requests + 0u);  // loadgen specs, all answered
  EXPECT_EQ(c.connections_accepted, load.connections + 1u);  // + stats client
  EXPECT_EQ(c.connections_closed, c.connections_accepted);
  EXPECT_EQ(c.pings, 1u);
  EXPECT_EQ(c.stats_requests, 1u);
  EXPECT_EQ(c.frames_admitted, c.frames_processed);
  // Spec-granular admission: every admitted spec was answered (no
  // rejects in this run), so the spec tally matches requests served.
  EXPECT_EQ(c.specs_admitted, c.requests_served);
  EXPECT_EQ(c.placements_hit + c.placements_merge + c.placements_insert,
            c.requests_served);

  // The event trace saw the connection lifecycle and the drain.
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t drain_begin = 0;
  std::uint64_t drain_complete = 0;
  for (const obs::TraceEvent& event : obs.trace.snapshot()) {
    if (event.kind == obs::EventKind::kServeConnection) {
      if (std::string_view(event.detail) == "accepted") ++accepted;
      if (std::string_view(event.detail) == "closed") ++closed;
    }
    if (event.kind == obs::EventKind::kServeDrain) {
      if (std::string_view(event.detail) == "begin") ++drain_begin;
      if (std::string_view(event.detail) == "complete") ++drain_complete;
    }
  }
  EXPECT_EQ(accepted, c.connections_accepted);
  EXPECT_EQ(closed, c.connections_closed);
  EXPECT_EQ(drain_begin, 1u);
  EXPECT_EQ(drain_complete, 1u);
}

// The overload path has metric twins too: saturate a tiny queue and
// reconcile the rejection counters.
TEST(ServeObsReconcile, RejectionCountersReconcile) {
  core::Landlord landlord(repo(), cache_config());
  obs::Observability obs;

  ServerConfig server_config;
  server_config.workers = 1;
  server_config.max_queue = 1;
  Server server(landlord, server_config);
  server.set_observability(&obs);
  ASSERT_TRUE(server.start().ok());

  LoadGenConfig load;
  load.seed = 5;
  load.catalog_specs = 20;
  load.max_initial_selection = 20;
  const auto catalog = make_catalog(repo(), load);

  Client client;
  ASSERT_TRUE(client.connect(server.port()).ok());
  // One frame occupies the single slot long enough to bounce another:
  // park the worker on a submit, then overflow, then drain.
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  server.set_process_test_hook([&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return open; });
  });
  ASSERT_TRUE(client.send_frame(encode_submit(1, catalog[0])));
  while (server.queue_depth() < 1) std::this_thread::yield();
  ASSERT_TRUE(client.send_frame(encode_submit(2, catalog[1])));
  const auto bounced = client.recv_frame();
  ASSERT_TRUE(bounced.ok());
  ASSERT_EQ(bounced.value.header.type, FrameType::kRejected);
  {
    std::scoped_lock lock(mutex);
    open = true;
  }
  cv.notify_all();
  const auto placed = client.recv_frame();
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed.value.header.type, FrameType::kPlacement);
  server.stop();

  const ServeCounters c = server.counters();
  const auto snap = obs.registry.snapshot();
  EXPECT_EQ(c.rejected_queue_full, 1u);
  EXPECT_EQ(c.rejected_requests, 1u);
  expect_series(snap, "serve_rejected_total{reason=\"queue-full\"}",
                c.rejected_queue_full);
  expect_series(snap, "serve_rejected_requests_total", c.rejected_requests);

  std::uint64_t overloads = 0;
  for (const obs::TraceEvent& event : obs.trace.snapshot()) {
    if (event.kind == obs::EventKind::kServeOverload) ++overloads;
  }
  EXPECT_EQ(overloads, 1u);
}

}  // namespace
}  // namespace landlord::serve
