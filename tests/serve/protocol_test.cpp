// Round-trip and invariant tests for the serve wire protocol: every
// frame type encodes and decodes back to itself, the header carries its
// fields verbatim, doubles survive as exact bit patterns, and the
// spec/placement bridges are lossless.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"
#include "spec/package_set.hpp"
#include "spec/specification.hpp"

namespace landlord::serve {
namespace {

constexpr std::size_t kUniverse = 128;

SubmitRequest sample_submit(std::uint64_t client_id) {
  SubmitRequest request;
  request.client_id = client_id;
  request.packages = {0, 7, 19, 127};
  spec::VersionConstraint constraint;
  constraint.package = "python";
  constraint.op = spec::ConstraintOp::kGe;
  constraint.version = "3.8";
  request.constraints.push_back(constraint);
  return request;
}

PlacementReply sample_placement(std::uint64_t client_id) {
  PlacementReply reply;
  reply.client_id = client_id;
  reply.kind = core::RequestKind::kMerge;
  reply.degraded = true;
  reply.failed = false;
  reply.build_retries = 2;
  reply.image = 41;
  reply.image_bytes = 3'500'000'000ull;
  reply.requested_bytes = 2'100'000'000ull;
  reply.prep_seconds = 87.125;
  reply.error = "";
  return reply;
}

TEST(ServeProtocol, HeaderFieldsSurviveVerbatim) {
  const std::string bytes = encode_submit(0xDEADBEEFCAFEF00Dull,
                                          sample_submit(9));
  const auto header = decode_header(bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value.magic, kMagic);
  EXPECT_EQ(header.value.version, kProtocolVersion);
  EXPECT_EQ(header.value.type, FrameType::kSubmit);
  EXPECT_EQ(header.value.request_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(header.value.payload_size, bytes.size() - kHeaderSize);
}

TEST(ServeProtocol, SubmitRoundTrips) {
  const SubmitRequest request = sample_submit(1234);
  const auto decoded = decode_frame(encode_submit(7, request), kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.header.type, FrameType::kSubmit);
  ASSERT_EQ(decoded.value.submits.size(), 1u);
  const auto& back = decoded.value.submits[0];
  EXPECT_EQ(back.client_id, request.client_id);
  EXPECT_EQ(back.packages, request.packages);
  EXPECT_EQ(back.constraints, request.constraints);
}

TEST(ServeProtocol, BatchSubmitRoundTrips) {
  std::vector<SubmitRequest> requests;
  for (std::uint64_t i = 0; i < 5; ++i) requests.push_back(sample_submit(i));
  requests[2].packages = {};  // empty spec inside a batch is legal
  const auto decoded =
      decode_frame(encode_batch_submit(99, requests), kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.header.type, FrameType::kBatchSubmit);
  ASSERT_EQ(decoded.value.submits.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded.value.submits[i].client_id, requests[i].client_id);
    EXPECT_EQ(decoded.value.submits[i].packages, requests[i].packages);
  }
}

TEST(ServeProtocol, PlacementRoundTripsExactly) {
  const PlacementReply reply = sample_placement(55);
  const auto decoded = decode_frame(encode_placement(3, reply), kUniverse);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value.placements.size(), 1u);
  EXPECT_EQ(decoded.value.placements[0], reply);
}

TEST(ServeProtocol, BatchPlacementRoundTrips) {
  std::vector<PlacementReply> replies;
  for (std::uint64_t i = 0; i < 4; ++i) replies.push_back(sample_placement(i));
  replies[1].kind = core::RequestKind::kInsert;
  replies[3].failed = true;
  replies[3].error = "build ladder exhausted";
  const auto decoded =
      decode_frame(encode_batch_placement(8, replies), kUniverse);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value.placements.size(), replies.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(decoded.value.placements[i], replies[i]);
  }
}

// Doubles cross the wire as IEEE-754 bit patterns — the loopback
// equivalence suite compares placements bit-for-bit, so nothing may be
// lost to formatting. Exercise values decimal round-trips mangle.
TEST(ServeProtocol, DoublesTravelAsExactBitPatterns) {
  for (const double value :
       {0.0, -0.0, 1.0 / 3.0, 6.02e23, std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::nextafter(1.0, 2.0)}) {
    PlacementReply reply = sample_placement(1);
    reply.prep_seconds = value;
    const auto decoded = decode_frame(encode_placement(1, reply), kUniverse);
    ASSERT_TRUE(decoded.ok());
    std::uint64_t sent = 0;
    std::uint64_t got = 0;
    std::memcpy(&sent, &value, sizeof(sent));
    std::memcpy(&got, &decoded.value.placements[0].prep_seconds, sizeof(got));
    EXPECT_EQ(got, sent) << value;
  }
}

TEST(ServeProtocol, EmptyPayloadFramesRoundTrip) {
  for (const auto& [bytes, type] :
       {std::pair{encode_ping(1), FrameType::kPing},
        std::pair{encode_pong(2), FrameType::kPong},
        std::pair{encode_stats_request(3), FrameType::kStats},
        std::pair{encode_drained(4), FrameType::kDrained}}) {
    const auto decoded = decode_frame(bytes, kUniverse);
    ASSERT_TRUE(decoded.ok()) << to_string(type);
    EXPECT_EQ(decoded.value.header.type, type);
    EXPECT_EQ(bytes.size(), kHeaderSize) << to_string(type);
  }
}

TEST(ServeProtocol, StatsReplyRoundTrips) {
  StatsReply stats;
  stats.requests = 1'000'000;
  stats.hits = 900'000;
  stats.merges = 50'000;
  stats.inserts = 50'000;
  stats.deletes = 12'345;
  stats.splits = 17;
  stats.conflict_rejections = 3;
  stats.requested_bytes = 1ull << 50;
  stats.written_bytes = 1ull << 44;
  stats.image_count = 4096;
  stats.total_bytes = 1ull << 45;
  stats.unique_bytes = 1ull << 43;
  stats.container_efficiency_sum = 812345.0625;
  stats.prep_seconds = 1e9 + 0.5;
  const auto decoded = decode_frame(encode_stats_reply(11, stats), kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.stats, stats);
}

TEST(ServeProtocol, RejectedAndErrorRoundTrip) {
  for (const auto reason : {RejectReason::kQueueFull, RejectReason::kDraining}) {
    const auto decoded = decode_frame(encode_rejected(5, reason), kUniverse);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value.reject_reason, reason);
  }
  for (const auto status : {DecodeStatus::kOk, DecodeStatus::kTruncated,
                            DecodeStatus::kUnexpectedType}) {
    const auto decoded = decode_frame(encode_error(6, status), kUniverse);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value.error_status, status);
  }
}

TEST(ServeProtocol, UniverseZeroSkipsRangeCheckOnly) {
  SubmitRequest request;
  request.client_id = 1;
  request.packages = {5, 1'000'000};  // far outside any real universe
  EXPECT_TRUE(decode_frame(encode_submit(1, request), 0).ok());
  EXPECT_EQ(decode_frame(encode_submit(1, request), kUniverse).status,
            DecodeStatus::kPackageOutOfRange);
  // Ordering is enforced regardless of universe.
  request.packages = {9, 5};
  EXPECT_EQ(decode_frame(encode_submit(1, request), 0).status,
            DecodeStatus::kUnsortedPackages);
}

// ---- Protocol v2: retry identity + deadline prefix ----

TEST(ServeProtocolV2, SubmitCarriesSessionAndDeadline) {
  const SubmitRequest request = sample_submit(77);
  const std::string bytes =
      encode_submit_v2(21, request, /*session_id=*/0xFEEDu,
                       /*deadline_ms=*/2500);
  const auto header = decode_header(bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value.version, kProtocolVersion2);

  const auto decoded = decode_frame(bytes, kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.session_id, 0xFEEDu);
  EXPECT_EQ(decoded.value.deadline_ms, 2500u);
  ASSERT_EQ(decoded.value.submits.size(), 1u);
  EXPECT_EQ(decoded.value.submits[0].client_id, request.client_id);
  EXPECT_EQ(decoded.value.submits[0].packages, request.packages);
  EXPECT_EQ(decoded.value.submits[0].constraints, request.constraints);
}

TEST(ServeProtocolV2, BatchSubmitCarriesSessionAndDeadline) {
  std::vector<SubmitRequest> requests;
  for (std::uint64_t i = 0; i < 3; ++i) requests.push_back(sample_submit(i));
  const auto decoded = decode_frame(
      encode_batch_submit_v2(5, requests, /*session_id=*/9,
                             /*deadline_ms=*/0),
      kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.session_id, 9u);
  EXPECT_EQ(decoded.value.deadline_ms, 0u);
  ASSERT_EQ(decoded.value.submits.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded.value.submits[i].client_id, requests[i].client_id);
  }
}

// v1 frames keep decoding unchanged: old clients see no difference, and
// the defaulted identity (0, 0) means "no dedup identity, no deadline".
TEST(ServeProtocolV2, V1SubmitDecodesWithDefaultedIdentity) {
  const auto decoded =
      decode_frame(encode_submit(3, sample_submit(1)), kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.header.version, kProtocolVersion);
  EXPECT_EQ(decoded.value.session_id, 0u);
  EXPECT_EQ(decoded.value.deadline_ms, 0u);
}

// The v2 prefix is a *submit* affordance: replies stay v1-encoded and
// byte-identical whichever protocol version the submit used.
TEST(ServeProtocolV2, RepliesStayVersionOneEncoded) {
  const PlacementReply reply = sample_placement(12);
  const std::string bytes = encode_placement(6, reply);
  const auto header = decode_header(bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value.version, kProtocolVersion);
  const auto decoded = decode_frame(bytes, kUniverse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.placements[0], reply);
}

TEST(ServeProtocolV2, TruncatedPrefixIsTyped) {
  std::string bytes =
      encode_submit_v2(1, sample_submit(1), /*session_id=*/4,
                       /*deadline_ms=*/10);
  // Cut inside the 12-byte prefix (header + 6 bytes) and re-stamp the
  // header's payload_size so only the prefix is short, not the frame.
  bytes.resize(kHeaderSize + 6);
  const std::uint32_t payload = 6;
  std::memcpy(bytes.data() + 4, &payload, sizeof(payload));
  EXPECT_EQ(decode_frame(bytes, kUniverse).status, DecodeStatus::kTruncated);
}

// ---- Hostile allocation shapes ----

// A count field the remaining payload cannot possibly hold must be
// refused BEFORE reserve(): with universe 0 the range check does not
// bound it, and a 16-byte header + u32 count could otherwise demand a
// multi-GB allocation from a 20-byte frame.
TEST(ServeProtocol, HugePackageCountIsRefusedBeforeAllocation) {
  std::string bytes = encode_submit(1, sample_submit(1));
  const std::uint32_t hostile = 1u << 24;  // 16M ids = 64 MiB reserve
  // Overwrite the package count (payload: u64 client_id, then u32 count).
  std::memcpy(bytes.data() + kHeaderSize + 8, &hostile, sizeof(hostile));
  EXPECT_EQ(decode_frame(bytes, 0).status, DecodeStatus::kTruncated);
  EXPECT_EQ(decode_frame(bytes, kUniverse).status,
            DecodeStatus::kPackageOutOfRange);
}

// to_request → encode → decode → to_specification is the full client →
// server path; the reconstructed specification must carry the same
// package set and constraints.
TEST(ServeProtocol, SpecificationBridgeIsLossless) {
  spec::PackageSet packages(kUniverse);
  for (const std::uint32_t id : {3u, 8u, 21u, 64u, 127u}) {
    packages.insert(pkg::PackageId{id});
  }
  spec::Specification spec(std::move(packages), "bridge-test");
  spec::VersionConstraint constraint;
  constraint.package = "root";
  constraint.op = spec::ConstraintOp::kEq;
  constraint.version = "6.22";
  spec.add_constraint(constraint);

  const SubmitRequest request = to_request(spec, 777);
  EXPECT_EQ(request.client_id, 777u);
  const auto decoded = decode_frame(encode_submit(1, request), kUniverse);
  ASSERT_TRUE(decoded.ok());
  const spec::Specification back =
      to_specification(decoded.value.submits[0], kUniverse);
  EXPECT_EQ(back.size(), spec.size());
  EXPECT_TRUE(back.packages().bits() == spec.packages().bits());
  EXPECT_EQ(back.constraints(), spec.constraints());
}

}  // namespace
}  // namespace landlord::serve
