// Idempotent-retry suite (label: servefault): the dedup window's
// claim/complete/abort/evict semantics, the ResilientClient's backoff
// schedule and reconnect behavior, and the wire-level reply-lost /
// eviction / mid-pipeline-reconnect scenarios from docs/serve.md.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/dedup.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace landlord::serve {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 97);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config() {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() / 2;
  return config;
}

std::vector<SubmitRequest> catalog() {
  LoadGenConfig load;
  load.seed = 11;
  load.catalog_specs = 20;
  load.max_initial_selection = 20;
  return make_catalog(repo(), load);
}

// ---- DedupWindow unit semantics ----

TEST(DedupWindow, ClaimCompleteThenDuplicateIsAnsweredFromWindow) {
  DedupWindow window(8);
  const DedupWindow::Key key{.session_id = 5, .request_id = 1};
  FrameType type = FrameType::kPlacement;
  std::vector<PlacementReply> replies;

  ASSERT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);
  PlacementReply reply;
  reply.client_id = 42;
  reply.image = 7;
  EXPECT_EQ(window.complete(key, FrameType::kBatchPlacement, {reply}), 0u);

  ASSERT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kDone);
  EXPECT_EQ(type, FrameType::kBatchPlacement);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], reply);
}

TEST(DedupWindow, AbortReleasesTheIdentityForReExecution) {
  DedupWindow window(8);
  const DedupWindow::Key key{.session_id = 5, .request_id = 2};
  FrameType type = FrameType::kPlacement;
  std::vector<PlacementReply> replies;

  ASSERT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);
  window.abort(key);
  // The rejection was not a placement: the retry gets to execute.
  EXPECT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);
}

TEST(DedupWindow, InFlightDuplicateParksUntilResolution) {
  DedupWindow window(8);
  const DedupWindow::Key key{.session_id = 1, .request_id = 3};
  FrameType type = FrameType::kPlacement;
  std::vector<PlacementReply> replies;
  ASSERT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);

  std::thread waiter([&] {
    FrameType got_type = FrameType::kPlacement;
    std::vector<PlacementReply> got;
    ASSERT_EQ(window.claim(key, &got_type, &got),
              DedupWindow::Claim::kInFlight);
    ASSERT_TRUE(window.wait(key, &got_type, &got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].client_id, 9u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  PlacementReply reply;
  reply.client_id = 9;
  window.complete(key, FrameType::kPlacement, {reply});
  waiter.join();
}

TEST(DedupWindow, FifoEvictionOverCompletedEntriesOnly) {
  DedupWindow window(2);
  FrameType type = FrameType::kPlacement;
  std::vector<PlacementReply> replies;
  const auto key = [](std::uint64_t rid) {
    return DedupWindow::Key{.session_id = 1, .request_id = rid};
  };

  // An in-flight entry never evicts: its owner is about to complete it.
  ASSERT_EQ(window.claim(key(1), &type, &replies), DedupWindow::Claim::kNew);
  ASSERT_EQ(window.claim(key(2), &type, &replies), DedupWindow::Claim::kNew);
  ASSERT_EQ(window.claim(key(3), &type, &replies), DedupWindow::Claim::kNew);
  EXPECT_EQ(window.complete(key(1), FrameType::kPlacement, {}), 0u);
  EXPECT_EQ(window.complete(key(2), FrameType::kPlacement, {}), 0u);
  // Completing 3 overflows capacity 2: the oldest completed (1) goes.
  EXPECT_EQ(window.complete(key(3), FrameType::kPlacement, {}), 1u);
  EXPECT_EQ(window.claim(key(1), &type, &replies), DedupWindow::Claim::kNew);
  window.abort(key(1));
  EXPECT_EQ(window.claim(key(2), &type, &replies), DedupWindow::Claim::kDone);
  EXPECT_EQ(window.claim(key(3), &type, &replies), DedupWindow::Claim::kDone);
}

TEST(DedupWindow, CapacityZeroDisablesDedup) {
  DedupWindow window(0);
  const DedupWindow::Key key{.session_id = 1, .request_id = 1};
  FrameType type = FrameType::kPlacement;
  std::vector<PlacementReply> replies;
  EXPECT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);
  window.complete(key, FrameType::kPlacement, {});
  EXPECT_EQ(window.claim(key, &type, &replies), DedupWindow::Claim::kNew);
  EXPECT_EQ(window.size(), 0u);
}

// ---- Backoff scheduling ----

TEST(ResilientClientRetry, BackoffScheduleIsSeededAndExhausts) {
  RetryPolicy policy;
  policy.backoff.max_retries = 3;
  policy.backoff.base_delay_s = 0.5;
  policy.backoff.multiplier = 2.0;
  policy.backoff.jitter = 0.1;
  policy.backoff_scale = 0.0;  // modelled only: the test must be instant
  policy.reply_timeout_ms = 10;

  // Port 1 on loopback: nothing listens, every dial fails.
  ResilientClient client(1, policy, /*seed=*/99);
  const auto result = client.submit(catalog()[0]);
  EXPECT_FALSE(result.ok());

  const RetryTally& tally = client.tally();
  EXPECT_EQ(tally.connects, 0u);
  EXPECT_EQ(tally.backoffs, 3u);  // one wait before each retry
  EXPECT_EQ(tally.exhausted, 1u);
  EXPECT_GT(tally.backoff_seconds, 0.0);

  // The modelled schedule is a pure function of (policy, seed): the
  // expected waits replay from the same rng evolution the client uses
  // (one session-id draw, then one jitter draw per backoff).
  util::Rng replay(99);
  std::uint64_t session = 0;
  do {
    session = replay();
  } while (session == 0);
  EXPECT_EQ(client.session_id(), session);
  double expected = 0.0;
  for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
    expected += policy.backoff.delay_for(attempt, replay);
  }
  EXPECT_DOUBLE_EQ(tally.backoff_seconds, expected);

  // Same seed, same dead port: the whole tally replays.
  ResilientClient again(1, policy, /*seed=*/99);
  EXPECT_FALSE(again.submit(catalog()[0]).ok());
  EXPECT_DOUBLE_EQ(again.tally().backoff_seconds, tally.backoff_seconds);
}

// ---- Wire-level retry scenarios ----

/// Server + optional proxy fixture with a single worker (deterministic
/// ordering) and a configurable dedup window.
struct Rig {
  explicit Rig(std::size_t dedup_window,
               const fault::FaultPlan* plan = nullptr)
      : landlord(repo(), cache_config()) {
    ServerConfig config;
    config.workers = 1;
    config.dedup_window = dedup_window;
    server = std::make_unique<Server>(landlord, config);
    EXPECT_TRUE(server->start().ok());
    if (plan != nullptr) {
      ChaosProxyConfig proxy_config;
      proxy_config.target_port = server->port();
      proxy_config.plan = *plan;
      proxy_config.stall_ms = 5;
      proxy = std::make_unique<ChaosProxy>(proxy_config);
      EXPECT_TRUE(proxy->start().ok());
    }
  }

  ~Rig() {
    if (proxy) proxy->stop();
    server->stop();
  }

  [[nodiscard]] std::uint16_t port() const {
    return proxy ? proxy->port() : server->port();
  }

  core::Landlord landlord;
  std::unique_ptr<Server> server;
  std::unique_ptr<ChaosProxy> proxy;
};

TEST(ResilientClientRetry, LostReplyIsAnsweredFromWindowNotReplaced) {
  // The schedule cuts the FIRST chunk of each direction: the first
  // submit is fragmented (server never sees a full frame), and — one
  // relay later — the first reply is fragmented (client never sees it,
  // but the server HAS placed the specs). Both lost-at-different-points
  // shapes land on one identity.
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.at(fault::FaultOp::kPartialDelivery, 0);

  Rig rig(/*dedup_window=*/64, &plan);
  RetryPolicy policy;
  policy.backoff.max_retries = 6;
  policy.backoff_scale = 0.0;
  policy.reply_timeout_ms = 500;
  ResilientClient client(rig.port(), policy, /*seed=*/7);

  const auto requests = catalog();
  const auto first = client.submit(requests[0]);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_FALSE(first.value().failed);

  // Both directions spent their scheduled fragment.
  EXPECT_EQ(rig.proxy->tally().partials, 2u);
  EXPECT_GE(client.tally().retransmits, 2u);

  // A later, unfaulted submit flows normally.
  const auto second = client.submit(requests[1]);
  ASSERT_TRUE(second.ok());

  const ServeCounters counters = rig.server->counters();
  // The retransmit whose original executed was answered from the
  // window; nothing was ever double-placed.
  EXPECT_EQ(counters.dedup_hits, 1u);
  EXPECT_EQ(counters.requests_served, 2u);
  EXPECT_EQ(rig.landlord.counters().requests, 2u);
}

TEST(ResilientClientRetry, EvictedIdentityIsReExecutedNotWedged) {
  // Window of ONE completed entry: finishing rid 2 evicts rid 1, so a
  // late duplicate of rid 1 re-executes (the window bounds memory, not
  // correctness).
  Rig rig(/*dedup_window=*/1);
  const auto requests = catalog();

  Client raw;
  ASSERT_TRUE(raw.connect(rig.server->port()).ok());
  const std::string submit1 =
      encode_submit_v2(1, requests[0], /*session_id=*/4, /*deadline_ms=*/0);

  ASSERT_TRUE(raw.send_frame(submit1));
  const Decoded<Frame> reply1 = raw.recv_frame();
  ASSERT_TRUE(reply1.ok());

  ASSERT_TRUE(raw.send_frame(
      encode_submit_v2(2, requests[1], /*session_id=*/4, /*deadline_ms=*/0)));
  const Decoded<Frame> reply2 = raw.recv_frame();
  ASSERT_TRUE(reply2.ok());

  // The window publishes AFTER the reply hits the write path, so the
  // reply can beat the eviction here — wait for it to land before the
  // duplicate, or the resend races a still-resident rid 1.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (rig.server->counters().dedup_evictions == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Duplicate of rid 1 after its eviction: re-executed, same placement
  // (the image exists now, so the decision layer answers it as a hit —
  // and the reply still names the same image).
  ASSERT_TRUE(raw.send_frame(submit1));
  const Decoded<Frame> reply3 = raw.recv_frame();
  ASSERT_TRUE(reply3.ok());
  EXPECT_EQ(reply3.value.placements[0].image, reply1.value.placements[0].image);
  raw.close();

  const ServeCounters counters = rig.server->counters();
  EXPECT_EQ(counters.dedup_hits, 0u);
  EXPECT_GE(counters.dedup_evictions, 1u);
  EXPECT_EQ(counters.requests_served, 3u);  // rid 1 executed twice
}

TEST(ResilientClientRetry, MidStreamReconnectKeepsIdentityStream) {
  Rig rig(/*dedup_window=*/64);
  RetryPolicy policy;
  policy.backoff_scale = 0.0;
  policy.reply_timeout_ms = 500;
  ResilientClient client(rig.server->port(), policy, /*seed=*/13);

  const auto requests = catalog();
  for (int i = 0; i < 3; ++i) {
    const auto reply = client.submit(requests[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().client_id,
              requests[static_cast<std::size_t>(i)].client_id);
  }
  // Forced mid-stream reconnect: the correlation/identity stream must
  // continue, not restart (a restarted stream would collide with the
  // window entries of the first connection's requests).
  client.disconnect();
  for (int i = 3; i < 6; ++i) {
    const auto reply = client.submit(requests[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().client_id,
              requests[static_cast<std::size_t>(i)].client_id);
  }
  EXPECT_EQ(client.tally().connects, 2u);
  EXPECT_EQ(client.next_request_id(), 7u);

  const ServeCounters counters = rig.server->counters();
  EXPECT_EQ(counters.requests_served, 6u);
  EXPECT_EQ(counters.dedup_hits, 0u);  // nothing was lost, nothing replayed
}

}  // namespace
}  // namespace landlord::serve
