#include "shrinkwrap/builder.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"

namespace landlord::shrinkwrap {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 31);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

spec::Specification spec_for(std::initializer_list<std::uint32_t> ids) {
  std::vector<pkg::PackageId> request;
  for (auto i : ids) request.push_back(pkg::package_id(i));
  return spec::Specification::from_request(repo(), request);
}

TEST(ImageBuilder, ColdBuildFetchesMostOfTheImage) {
  // A cold build downloads everything except intra-image duplicates (two
  // versions of one project inside the same closure share chunks).
  ImageBuilder builder(repo());
  const auto built = builder.build(spec_for({100}));
  EXPECT_GT(built.bytes, util::Bytes{0});
  EXPECT_GT(built.files, 0u);
  EXPECT_LE(built.fetched_bytes, built.bytes);
  EXPECT_GT(built.fetched_bytes, built.bytes / 2);
}

TEST(ImageBuilder, RebuildFetchesNothingNew) {
  ImageBuilder builder(repo());
  const auto spec = spec_for({100, 101});
  (void)builder.build(spec);
  const auto rebuilt = builder.build(spec);
  EXPECT_EQ(rebuilt.fetched_bytes, util::Bytes{0});
  EXPECT_GT(rebuilt.bytes, util::Bytes{0});  // still written in full
}

TEST(ImageBuilder, OverlappingSpecFetchesOnlyDelta) {
  ImageBuilder builder(repo());
  const auto a = builder.build(spec_for({100, 101}));
  const auto b = builder.build(spec_for({100, 101, 102}));
  EXPECT_LT(b.fetched_bytes, b.bytes);
  EXPECT_GT(a.fetched_bytes, util::Bytes{0});
}

TEST(ImageBuilder, PrepTimeGrowsWithImageSize) {
  ImageBuilder builder(repo());
  const auto small = builder.build(spec_for({50}));
  ImageBuilder cold(repo());
  const auto large = cold.build(spec_for({50, 150, 250, 350}));
  EXPECT_GT(large.bytes, small.bytes);
  EXPECT_GT(large.prep_seconds, small.prep_seconds);
}

TEST(ImageBuilder, ModelSecondsComposition) {
  BuildTimeModel model;
  model.fixed_overhead_s = 10.0;
  model.download_bytes_per_s = 100.0;
  model.compress_bytes_per_s = 200.0;
  model.per_file_s = 1.0;
  ImageBuilder builder(repo(), {}, model);
  // 10 + 1000/100 + 400/200 + 5*1 = 10 + 10 + 2 + 5 = 27.
  EXPECT_DOUBLE_EQ(builder.model_seconds(400, 1000, 5), 27.0);
}

TEST(ImageBuilder, EmptySpecCostsOnlyOverhead) {
  ImageBuilder builder(repo());
  const auto built = builder.build(spec::Specification(spec::PackageSet(repo().size())));
  EXPECT_EQ(built.bytes, util::Bytes{0});
  EXPECT_EQ(built.files, 0u);
  EXPECT_DOUBLE_EQ(built.prep_seconds, BuildTimeModel{}.fixed_overhead_s);
}

TEST(ImageBuilder, ChunkCacheGrowsAcrossBuilds) {
  ImageBuilder builder(repo());
  (void)builder.build(spec_for({10}));
  const auto after_one = builder.chunk_cache().chunk_count();
  (void)builder.build(spec_for({20}));
  EXPECT_GT(builder.chunk_cache().chunk_count(), after_one);
}

TEST(ImageBuilder, DefaultModelGivesFig2ScalePrepTimes) {
  // A ~5 GB image should prepare in tens of seconds, matching the Fig. 2
  // band (37-115 s for 2.7-8.4 GB images).
  ImageBuilder builder(repo());
  const double seconds =
      builder.model_seconds(5'000'000'000ULL, 5'000'000'000ULL, 1000);
  EXPECT_GT(seconds, 20.0);
  EXPECT_LT(seconds, 150.0);
}

}  // namespace
}  // namespace landlord::shrinkwrap
