// Randomized ledger oracle for the chunk CAS and the delta-chained
// image store. The incremental refcounts and byte ledgers are compared
// after every step against a from-scratch recompute (a reference model
// for Cas; ImageStore::reconcile() — itself a manifest replay — for the
// store). Also pins the typed size-mismatch error and drop idempotence.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "shrinkwrap/cas.hpp"
#include "shrinkwrap/chunker.hpp"
#include "shrinkwrap/imagestore.hpp"
#include "util/rng.hpp"

namespace landlord::shrinkwrap {
namespace {

// ---- Cas vs a reference refcount model ----

struct RefModel {
  std::unordered_map<ChunkHash, std::pair<util::Bytes, std::uint32_t>> chunks;

  [[nodiscard]] util::Bytes unique() const {
    util::Bytes sum = 0;
    for (const auto& [hash, entry] : chunks) sum += entry.first;
    return sum;
  }
  [[nodiscard]] util::Bytes logical() const {
    util::Bytes sum = 0;
    for (const auto& [hash, entry] : chunks) sum += entry.first * entry.second;
    return sum;
  }
};

void expect_matches(const Cas& cas, const RefModel& model) {
  ASSERT_EQ(cas.chunk_count(), model.chunks.size());
  ASSERT_EQ(cas.unique_bytes(), model.unique());
  ASSERT_EQ(cas.logical_bytes(), model.logical());
  for (const auto& [hash, entry] : model.chunks) {
    ASSERT_EQ(cas.refs(hash), entry.second);
    ASSERT_EQ(cas.size_of(hash), entry.first);
  }
  // And the reverse direction: the visitor exposes nothing extra.
  std::size_t visited = 0;
  cas.for_each_chunk([&](ChunkHash hash, util::Bytes size, std::uint32_t refs) {
    ++visited;
    const auto it = model.chunks.find(hash);
    ASSERT_NE(it, model.chunks.end());
    EXPECT_EQ(size, it->second.first);
    EXPECT_EQ(refs, it->second.second);
  });
  EXPECT_EQ(visited, model.chunks.size());
}

TEST(CasLedgerOracle, RandomAddDropSequencesReconcile) {
  util::Rng rng(0xCA5);
  Cas cas;
  RefModel model;
  // Small hash pool so adds and drops collide constantly.
  const auto size_for = [](std::uint64_t hash) -> util::Bytes {
    return 1 + (hash * 2654435761ULL) % (512 * util::kKiB);
  };
  for (int step = 0; step < 4000; ++step) {
    const ChunkHash hash = 1 + rng.uniform(64);
    if (rng.chance(0.6)) {
      const util::Bytes size = size_for(hash);
      auto added = cas.add_chunk(hash, size);
      ASSERT_TRUE(added.ok());
      auto& entry = model.chunks[hash];
      EXPECT_EQ(added.value(), entry.second == 0);  // true exactly on first ref
      entry.first = size;
      ++entry.second;
    } else {
      cas.drop_chunk(hash);
      auto it = model.chunks.find(hash);
      if (it != model.chunks.end() && --it->second.second == 0) {
        model.chunks.erase(it);
      }
    }
    if (step % 64 == 0) expect_matches(cas, model);
  }
  expect_matches(cas, model);
}

TEST(CasLedgerOracle, SizeMismatchIsTypedErrorAndLeavesStoreUntouched) {
  Cas cas;
  ASSERT_TRUE(cas.add_chunk(7, 100).ok());
  ASSERT_TRUE(cas.add_chunk(7, 100).ok());

  // Regression: this used to be a debug-only assert — release builds
  // silently corrupted the byte ledgers. Now a typed Result error.
  auto conflict = cas.add_chunk(7, 200);
  ASSERT_FALSE(conflict.ok());
  EXPECT_NE(conflict.error().message.find("size"), std::string::npos);

  EXPECT_EQ(cas.refs(7), 2u);  // the failed add registered nothing
  EXPECT_EQ(cas.size_of(7), util::Bytes{100});
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{100});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{200});
}

TEST(CasLedgerOracle, DropIsIdempotentCleanup) {
  Cas cas;
  cas.drop_chunk(99);  // never added: no-op
  EXPECT_EQ(cas.chunk_count(), 0u);

  ASSERT_TRUE(cas.add_chunk(99, 50).ok());
  cas.drop_chunk(99);
  EXPECT_FALSE(cas.contains(99));
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{0});
  cas.drop_chunk(99);  // second drop of the same chunk: still a no-op
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
  EXPECT_EQ(cas.refs(99), 0u);
}

// ---- ImageStore vs its own manifest-replay reconciliation ----

ImageStoreConfig small_store(std::uint32_t chain_cap) {
  ImageStoreConfig config;
  config.chain_cap = chain_cap;
  config.chunker.min_size = 4 * util::kKiB;
  config.chunker.target_size = 16 * util::kKiB;
  config.chunker.max_size = 64 * util::kKiB;
  return config;
}

/// An image tree assembled from a pool of shared "files", so distinct
/// images dedup against each other exactly as built images do.
std::vector<ChunkRef> random_tree(util::Rng& rng, const ChunkerParams& params) {
  std::vector<ChunkRef> tree;
  const std::uint64_t files = rng.uniform(1, 12);
  for (std::uint64_t f = 0; f < files; ++f) {
    const ChunkHash content = 1 + rng.uniform(32);  // shared file pool
    const util::Bytes size = 1 + (content * 7919) % (96 * util::kKiB);
    const auto chunks = model_chunks(content, size, params);
    tree.insert(tree.end(), chunks.begin(), chunks.end());
  }
  return tree;
}

TEST(ImageStoreOracle, RandomOpSequencesReconcileAfterEveryStep) {
  util::Rng rng(0x1ed9e5);
  ImageStore store(small_store(3));
  for (int step = 0; step < 600; ++step) {
    const std::uint64_t key = rng.uniform(8);
    const double roll = rng.uniform_double();
    if (roll < 0.55) {
      auto receipt = store.put(key, random_tree(rng, store.config().chunker));
      ASSERT_TRUE(receipt.ok());
      EXPECT_LE(store.chain_depth(key), store.config().chain_cap);
      EXPECT_GT(receipt.value().bytes_written, util::Bytes{0});
    } else if (roll < 0.7) {
      store.drop(key);
      EXPECT_FALSE(store.contains(key));
    } else if (roll < 0.85) {
      auto receipt = store.repack(key);
      ASSERT_TRUE(receipt.ok());
      EXPECT_EQ(store.chain_depth(key), 0u);
    } else {
      // Kill between the repack phases, then crash-recover.
      const bool prepared = store.repack_prepare(key);
      const std::size_t finished = store.recover();
      EXPECT_EQ(finished, prepared ? 1u : 0u);
      EXPECT_EQ(store.chain_depth(key), 0u);
    }
    const auto divergence = store.reconcile();
    ASSERT_EQ(divergence, std::nullopt) << "step " << step << ": " << *divergence;
    EXPECT_LE(store.unique_bytes(), store.logical_bytes());
    EXPECT_LE(store.dead_bytes(), store.logical_bytes());
  }
  // Everything dropped => every ledger returns to zero.
  for (std::uint64_t key = 0; key < 8; ++key) store.drop(key);
  EXPECT_EQ(store.image_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(store.logical_bytes(), util::Bytes{0});
  EXPECT_EQ(store.dead_bytes(), util::Bytes{0});
  EXPECT_EQ(store.reconcile(), std::nullopt);
}

TEST(ImageStoreOracle, DeltaPutChargesOnlyNewChunksPlusManifest) {
  ImageStore store(small_store(8));
  util::Rng rng(5);
  const auto base_tree = random_tree(rng, store.config().chunker);
  auto first = store.put(1, base_tree);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().delta);

  // Same tree again: nothing new, so only the manifest is charged.
  auto again = store.put(1, base_tree);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().delta);
  EXPECT_EQ(again.value().payload_bytes, util::Bytes{0});
  EXPECT_EQ(again.value().new_chunks, 0u);
  EXPECT_LT(again.value().bytes_written, first.value().bytes_written);
  EXPECT_EQ(store.reconcile(), std::nullopt);
}

TEST(ImageStoreOracle, ChainCapForcesRepackAndReclaimsDeadChunks) {
  ImageStore store(small_store(2));
  util::Rng rng(6);
  std::uint64_t repacks_seen = 0;
  for (int round = 0; round < 12; ++round) {
    auto receipt = store.put(1, random_tree(rng, store.config().chunker));
    ASSERT_TRUE(receipt.ok());
    if (receipt.value().repacked) ++repacks_seen;
    ASSERT_EQ(store.reconcile(), std::nullopt);
  }
  EXPECT_GT(repacks_seen, 0u);
  EXPECT_GT(store.stats().reclaimed_bytes, util::Bytes{0});
  // A freshly repacked + rebased chain holds no superseded payload for
  // this image beyond what later deltas added since the last repack.
  EXPECT_EQ(store.chain_depth(1), store.manifests(1).size() - 1);
}

TEST(ImageStoreOracle, ConflictingTreeIsTypedErrorAndLeavesStoreUnchanged) {
  ImageStore store(small_store(4));
  std::vector<ChunkRef> bad = {{.hash = 11, .size = 100},
                               {.hash = 11, .size = 200}};
  auto receipt = store.put(1, bad);
  ASSERT_FALSE(receipt.ok());
  EXPECT_FALSE(store.contains(1));
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.reconcile(), std::nullopt);

  // And a cross-image conflict: chunk 11 exists at size 100, a second
  // image claims size 200. The put fails; image 2 is never created.
  ASSERT_TRUE(store.put(1, {{.hash = 11, .size = 100}}).ok());
  auto conflict = store.put(2, {{.hash = 11, .size = 200}});
  ASSERT_FALSE(conflict.ok());
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.reconcile(), std::nullopt);
}

TEST(ImageStoreOracle, StatsAreMonotoneAndClearResets) {
  ImageStore store(small_store(2));
  util::Rng rng(7);
  ImageStoreStats last;
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(store.put(rng.uniform(3), random_tree(rng, store.config().chunker)).ok());
    const auto now = store.stats();
    EXPECT_GE(now.puts, last.puts);
    EXPECT_GE(now.bytes_written, last.bytes_written);
    EXPECT_GE(now.reclaimed_bytes, last.reclaimed_bytes);
    last = now;
  }
  store.clear();
  EXPECT_EQ(store.image_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(store.reconcile(), std::nullopt);
}

}  // namespace
}  // namespace landlord::shrinkwrap
