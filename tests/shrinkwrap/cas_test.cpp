#include "shrinkwrap/cas.hpp"

#include <gtest/gtest.h>

namespace landlord::shrinkwrap {
namespace {

// add_chunk returns Result<bool> (true = first reference). The helper
// keeps each test's intent readable: every add here is expected to
// succeed; the size-mismatch error path is pinned in cas_ledger_test.cpp.
bool add_ok(Cas& cas, ChunkHash hash, util::Bytes size) {
  auto added = cas.add_chunk(hash, size);
  EXPECT_TRUE(added.ok());
  return added.ok() && added.value();
}

TEST(Cas, StartsEmpty) {
  Cas cas;
  EXPECT_EQ(cas.chunk_count(), 0u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

TEST(Cas, FirstReferenceAddsUniqueBytes) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 0xabc, 100));
  EXPECT_TRUE(cas.contains(0xabc));
  EXPECT_EQ(cas.chunk_count(), 1u);
  EXPECT_EQ(cas.refs(0xabc), 1u);
  EXPECT_EQ(cas.size_of(0xabc), std::optional<util::Bytes>{100});
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{100});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{100});
}

TEST(Cas, DuplicateReferenceOnlyGrowsLogical) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 0xabc, 100));
  EXPECT_FALSE(add_ok(cas, 0xabc, 100));
  EXPECT_FALSE(add_ok(cas, 0xabc, 100));
  EXPECT_EQ(cas.chunk_count(), 1u);
  EXPECT_EQ(cas.refs(0xabc), 3u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{100});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{300});
}

TEST(Cas, DistinctChunksAccumulate) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 1, 10));
  EXPECT_TRUE(add_ok(cas, 2, 20));
  EXPECT_EQ(cas.chunk_count(), 2u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{30});
}

TEST(Cas, DropLastReferenceFrees) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 7, 50));
  cas.drop_chunk(7);
  EXPECT_FALSE(cas.contains(7));
  EXPECT_EQ(cas.refs(7), 0u);
  EXPECT_EQ(cas.size_of(7), std::nullopt);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

TEST(Cas, DropKeepsChunkWhileReferenced) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 7, 50));
  EXPECT_FALSE(add_ok(cas, 7, 50));
  cas.drop_chunk(7);
  EXPECT_TRUE(cas.contains(7));
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{50});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{50});
}

TEST(Cas, DropUnknownChunkIsNoop) {
  Cas cas;
  cas.drop_chunk(999);
  EXPECT_EQ(cas.chunk_count(), 0u);
}

TEST(Cas, InterleavedLifecycle) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 1, 10));
  EXPECT_TRUE(add_ok(cas, 2, 20));
  EXPECT_FALSE(add_ok(cas, 1, 10));
  cas.drop_chunk(2);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{10});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{20});
  cas.drop_chunk(1);
  cas.drop_chunk(1);
  EXPECT_EQ(cas.chunk_count(), 0u);
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

TEST(Cas, ForEachChunkVisitsLiveState) {
  Cas cas;
  EXPECT_TRUE(add_ok(cas, 1, 10));
  EXPECT_TRUE(add_ok(cas, 2, 20));
  EXPECT_FALSE(add_ok(cas, 2, 20));
  std::size_t visited = 0;
  util::Bytes unique = 0;
  util::Bytes logical = 0;
  cas.for_each_chunk([&](ChunkHash, util::Bytes size, std::uint32_t refs) {
    ++visited;
    unique += size;
    logical += static_cast<util::Bytes>(refs) * size;
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(unique, cas.unique_bytes());
  EXPECT_EQ(logical, cas.logical_bytes());
}

}  // namespace
}  // namespace landlord::shrinkwrap
