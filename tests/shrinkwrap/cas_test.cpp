#include "shrinkwrap/cas.hpp"

#include <gtest/gtest.h>

namespace landlord::shrinkwrap {
namespace {

TEST(Cas, StartsEmpty) {
  Cas cas;
  EXPECT_EQ(cas.chunk_count(), 0u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

TEST(Cas, FirstReferenceAddsUniqueBytes) {
  Cas cas;
  cas.add_chunk(0xabc, 100);
  EXPECT_TRUE(cas.contains(0xabc));
  EXPECT_EQ(cas.chunk_count(), 1u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{100});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{100});
}

TEST(Cas, DuplicateReferenceOnlyGrowsLogical) {
  Cas cas;
  cas.add_chunk(0xabc, 100);
  cas.add_chunk(0xabc, 100);
  cas.add_chunk(0xabc, 100);
  EXPECT_EQ(cas.chunk_count(), 1u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{100});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{300});
}

TEST(Cas, DistinctChunksAccumulate) {
  Cas cas;
  cas.add_chunk(1, 10);
  cas.add_chunk(2, 20);
  EXPECT_EQ(cas.chunk_count(), 2u);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{30});
}

TEST(Cas, DropLastReferenceFrees) {
  Cas cas;
  cas.add_chunk(7, 50);
  cas.drop_chunk(7);
  EXPECT_FALSE(cas.contains(7));
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{0});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

TEST(Cas, DropKeepsChunkWhileReferenced) {
  Cas cas;
  cas.add_chunk(7, 50);
  cas.add_chunk(7, 50);
  cas.drop_chunk(7);
  EXPECT_TRUE(cas.contains(7));
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{50});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{50});
}

TEST(Cas, DropUnknownChunkIsNoop) {
  Cas cas;
  cas.drop_chunk(999);
  EXPECT_EQ(cas.chunk_count(), 0u);
}

TEST(Cas, InterleavedLifecycle) {
  Cas cas;
  cas.add_chunk(1, 10);
  cas.add_chunk(2, 20);
  cas.add_chunk(1, 10);
  cas.drop_chunk(2);
  EXPECT_EQ(cas.unique_bytes(), util::Bytes{10});
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{20});
  cas.drop_chunk(1);
  cas.drop_chunk(1);
  EXPECT_EQ(cas.chunk_count(), 0u);
  EXPECT_EQ(cas.logical_bytes(), util::Bytes{0});
}

}  // namespace
}  // namespace landlord::shrinkwrap
