// Property suite for the content-defined chunker (both forms): the real
// FastCDC-style Chunker over bytes and its analytic twin model_chunks().
// Pins the contracts the delta store leans on — determinism, size
// bounds, exact coverage, and boundary-shift locality (an edit
// mid-stream disturbs O(1) chunks, the whole point of CDC).
#include "shrinkwrap/chunker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace landlord::shrinkwrap {
namespace {

/// Small params keep the suites fast: ~128 chunks per MiB buffer.
ChunkerParams test_params(std::uint64_t seed = 0x63646331ULL) {
  ChunkerParams params;
  params.min_size = 2 * util::kKiB;
  params.target_size = 8 * util::kKiB;
  params.max_size = 32 * util::kKiB;
  params.seed = seed;
  return params;
}

std::vector<std::uint8_t> random_bytes(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng());
  return data;
}

/// Multiset of chunk content identities (hash, size).
std::unordered_map<std::uint64_t, int> chunk_multiset(
    const std::vector<ChunkSpan>& spans) {
  std::unordered_map<std::uint64_t, int> out;
  for (const ChunkSpan& span : spans) ++out[span.hash ^ (span.size * 0x9e37ULL)];
  return out;
}

/// Chunks present in `after` but not matched in `before` (multiset diff).
int unmatched_chunks(const std::vector<ChunkSpan>& after,
                     const std::vector<ChunkSpan>& before) {
  auto have = chunk_multiset(before);
  int unmatched = 0;
  for (const ChunkSpan& span : after) {
    auto it = have.find(span.hash ^ (span.size * 0x9e37ULL));
    if (it != have.end() && it->second > 0) {
      --it->second;
    } else {
      ++unmatched;
    }
  }
  return unmatched;
}

void expect_covers(const std::vector<ChunkSpan>& spans, std::size_t size) {
  std::size_t at = 0;
  for (const ChunkSpan& span : spans) {
    EXPECT_EQ(span.offset, at);
    EXPECT_GT(span.size, util::Bytes{0});
    at += span.size;
  }
  EXPECT_EQ(at, size);
}

void expect_bounds(const std::vector<ChunkSpan>& spans,
                   const ChunkerParams& params) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(spans[i].size, params.max_size);
    if (i + 1 < spans.size()) {
      EXPECT_GE(spans[i].size, params.min_size);  // only the runt may be short
    }
  }
}

TEST(Chunker, EmptyAndTinyInputs) {
  Chunker chunker(test_params());
  EXPECT_TRUE(chunker.chunk(nullptr, 0).empty());

  const auto tiny = random_bytes(17, 1);
  const auto spans = chunker.chunk(tiny);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].offset, 0u);
  EXPECT_EQ(spans[0].size, util::Bytes{17});
}

TEST(Chunker, DeterministicAcrossInstancesAndRuns) {
  const auto data = random_bytes(1 << 20, 42);
  Chunker a(test_params());
  Chunker b(test_params());
  const auto spans_a = a.chunk(data);
  const auto spans_b = b.chunk(data);
  ASSERT_EQ(spans_a.size(), spans_b.size());
  for (std::size_t i = 0; i < spans_a.size(); ++i) {
    EXPECT_EQ(spans_a[i].offset, spans_b[i].offset);
    EXPECT_EQ(spans_a[i].size, spans_b[i].size);
    EXPECT_EQ(spans_a[i].hash, spans_b[i].hash);
  }
}

TEST(Chunker, SeedChangesBoundaries) {
  const auto data = random_bytes(1 << 20, 43);
  const auto spans_a = Chunker(test_params(1)).chunk(data);
  const auto spans_b = Chunker(test_params(2)).chunk(data);
  // Different gear tables cut in different places; identical boundary
  // lists across seeds would mean the seed is dead.
  const bool identical =
      spans_a.size() == spans_b.size() &&
      std::equal(spans_a.begin(), spans_a.end(), spans_b.begin(),
                 [](const ChunkSpan& x, const ChunkSpan& y) {
                   return x.offset == y.offset && x.size == y.size;
                 });
  EXPECT_FALSE(identical);
}

TEST(Chunker, CoverageAndBoundsOverManyBuffers) {
  const auto params = test_params();
  Chunker chunker(params);
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t size = static_cast<std::size_t>(rng.uniform(1, 1 << 19));
    const auto data = random_bytes(size, rng());
    const auto spans = chunker.chunk(data);
    expect_covers(spans, size);
    expect_bounds(spans, params);
  }
}

TEST(Chunker, MeanChunkSizeNearTarget) {
  const auto params = test_params();
  const auto data = random_bytes(4 << 20, 44);
  const auto spans = Chunker(params).chunk(data);
  ASSERT_GT(spans.size(), 10u);
  const double mean = static_cast<double>(data.size()) /
                      static_cast<double>(spans.size());
  // FastCDC normalisation keeps the realised mean within a small factor
  // of the target; a gross miss means the masks are wrong.
  EXPECT_GT(mean, 0.4 * static_cast<double>(params.target_size));
  EXPECT_LT(mean, 2.5 * static_cast<double>(params.target_size));
}

TEST(Chunker, InsertMidStreamDisturbsFewChunks) {
  const auto params = test_params();
  Chunker chunker(params);
  util::Rng rng(8);
  for (int round = 0; round < 8; ++round) {
    auto data = random_bytes(1 << 20, 100 + static_cast<std::uint64_t>(round));
    const auto before = chunker.chunk(data);

    auto edited = data;
    const std::size_t at = data.size() / 2 +
                           static_cast<std::size_t>(rng.uniform(4096));
    const std::size_t insert_len = static_cast<std::size_t>(rng.uniform(1, 64));
    const auto noise = random_bytes(insert_len, rng());
    edited.insert(edited.begin() + static_cast<std::ptrdiff_t>(at),
                  noise.begin(), noise.end());

    const auto after = chunker.chunk(edited);
    // Content-defined boundaries re-synchronise: only the chunks touching
    // the edit change, not everything downstream of it (which a
    // fixed-size chunker would shift wholesale).
    EXPECT_LE(unmatched_chunks(after, before), 8)
        << "round " << round << ": edit at " << at << " rewrote too much";
    EXPECT_GT(before.size(), 64u);
  }
}

TEST(Chunker, DeleteMidStreamDisturbsFewChunks) {
  const auto params = test_params();
  Chunker chunker(params);
  util::Rng rng(9);
  for (int round = 0; round < 8; ++round) {
    auto data = random_bytes(1 << 20, 200 + static_cast<std::uint64_t>(round));
    const auto before = chunker.chunk(data);

    auto edited = data;
    const std::size_t at = data.size() / 3 +
                           static_cast<std::size_t>(rng.uniform(4096));
    const std::size_t del_len = static_cast<std::size_t>(rng.uniform(1, 64));
    edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(at),
                 edited.begin() + static_cast<std::ptrdiff_t>(at + del_len));

    const auto after = chunker.chunk(edited);
    EXPECT_LE(unmatched_chunks(after, before), 8)
        << "round " << round << ": delete at " << at << " rewrote too much";
  }
}

TEST(Chunker, PrefixSharesLeadingChunks) {
  const auto data = random_bytes(1 << 20, 45);
  Chunker chunker(test_params());
  const auto whole = chunker.chunk(data);
  const auto half = chunker.chunk(data.data(), data.size() / 2);
  // Cut points depend only on bytes seen so far, so a prefix reproduces
  // the whole stream's leading boundaries exactly (bar its final runt).
  ASSERT_GE(half.size(), 2u);
  for (std::size_t i = 0; i + 1 < half.size(); ++i) {
    ASSERT_LT(i, whole.size());
    EXPECT_EQ(half[i].offset, whole[i].offset);
    EXPECT_EQ(half[i].size, whole[i].size);
    EXPECT_EQ(half[i].hash, whole[i].hash);
  }
}

// ---- model_chunks: the analytic twin used on the simulator hot path ----

TEST(ModelChunks, DeterministicAndExactlyCovering) {
  const auto params = test_params();
  util::Rng rng(10);
  for (int round = 0; round < 200; ++round) {
    const ChunkHash content = rng();
    const util::Bytes size = rng.uniform(1, 4 * params.max_size);
    const auto a = model_chunks(content, size, params);
    const auto b = model_chunks(content, size, params);
    ASSERT_EQ(a, b);

    util::Bytes sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_GT(a[i].size, util::Bytes{0});
      EXPECT_LE(a[i].size, params.max_size);
      if (i + 1 < a.size()) {
        EXPECT_GE(a[i].size, params.min_size);
      }
      sum += a[i].size;
    }
    EXPECT_EQ(sum, size);
  }
}

TEST(ModelChunks, ZeroSizeYieldsNoChunks) {
  EXPECT_TRUE(model_chunks(123, 0, test_params()).empty());
}

TEST(ModelChunks, ContentChangesIdentities) {
  const auto params = test_params();
  const auto a = model_chunks(0xAAAA, 10 * params.target_size, params);
  const auto b = model_chunks(0xBBBB, 10 * params.target_size, params);
  int shared = 0;
  for (const ChunkRef& chunk : a) {
    shared += static_cast<int>(std::count_if(
        b.begin(), b.end(),
        [&](const ChunkRef& other) { return other.hash == chunk.hash; }));
  }
  EXPECT_EQ(shared, 0) << "distinct files must not collide chunk ids";
}

TEST(ModelChunks, SameContentSharesAcrossProcessesViaChunkId) {
  // Two parties agreeing on (content, params) agree on every identity —
  // the property P2P chunk exchange would rely on.
  const auto params = test_params();
  const ChunkHash content = 0xFEEDFACE;
  const auto chunks = model_chunks(content, 5 * params.target_size, params);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].hash, chunk_id(content, i, params.seed));
  }
}

TEST(ModelChunks, SeedSeparatesIdentitySpaces) {
  EXPECT_NE(chunk_id(1, 0, 111), chunk_id(1, 0, 222));
  EXPECT_NE(chunk_id(1, 0, 111), chunk_id(1, 1, 111));
  EXPECT_NE(chunk_id(1, 0, 111), chunk_id(2, 0, 111));
}

}  // namespace
}  // namespace landlord::shrinkwrap
