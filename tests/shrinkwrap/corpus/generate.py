#!/usr/bin/env python3
"""Regenerates the chunk-manifest corpus (tests/shrinkwrap/corpus/).

Each file is named `<expected-status>__<description>.bin`, where the
status matches shrinkwrap::to_string(ManifestStatus). The suite in
tests/shrinkwrap/manifest_corpus_test.cpp decodes every file and pins
the typed status; the two chain-level statuses (dangling-parent,
bad-generation) decode cleanly and are pinned via validate_chain()
against the `ok__base_small` manifest, so keep that file name stable.

The corpus is checked in; rerun this script only when the wire format
(src/shrinkwrap/manifest.hpp) changes, and commit the result.
"""

import pathlib
import struct

HERE = pathlib.Path(__file__).resolve().parent

MAGIC = 0x314D434C  # "LCM1"
VERSION = 1
KIND_BASE = 1
KIND_DELTA = 2

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211


def fnv1a64(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def body(kind, image_key, generation, parent, chunks, *, magic=MAGIC,
         version=VERSION, count=None):
    """Header + entries, checksum not yet appended."""
    if count is None:
        count = len(chunks)
    out = struct.pack("<IBBHQIIQ", magic, version, kind, 0, image_key,
                      generation, count, parent)
    for hash_, size in chunks:
        out += struct.pack("<QQ", hash_, size)
    return out


def manifest(*args, **kwargs):
    raw = body(*args, **kwargs)
    return raw + struct.pack("<Q", fnv1a64(raw))


def digest(*args, **kwargs):
    """manifest_digest(): checksum of the encoding sans trailer."""
    return fnv1a64(body(*args, **kwargs))


BASE_CHUNKS = [(0x1111, 4096), (0x2222, 8192), (0x3333, 1024)]
BASE_ARGS = (KIND_BASE, 42, 0, 0, BASE_CHUNKS)
BASE_DIGEST = digest(*BASE_ARGS)

CORPUS = {
    # Well-formed manifests (also the prefix/mutation sweep seeds).
    "ok__base_small": manifest(*BASE_ARGS),
    "ok__base_empty": manifest(KIND_BASE, 7, 0, 0, []),
    "ok__delta_two_chunks":
        manifest(KIND_DELTA, 42, 1, BASE_DIGEST, [(0x4444, 2048), (0x5555, 512)]),
    # Header-level rejections.
    "short-header__empty": b"",
    "short-header__31_bytes": manifest(*BASE_ARGS)[:31],
    "bad-magic__zeroed": manifest(*BASE_ARGS, magic=0),
    "bad-version__v2": body(KIND_BASE, 1, 0, 0, [], version=2) + b"\0" * 8,
    "bad-kind__kind3": body(3, 1, 0, 0, []) + b"\0" * 8,
    "count-overflow__4_billion":
        body(KIND_BASE, 1, 0, 0, [], count=0xFFFFFFFF) + b"\0" * 8,
    # Length and checksum rejections.
    "truncated__missing_entry":
        body(KIND_BASE, 1, 0, 0, [(0xAA, 64)], count=2) + struct.pack("<Q", 0),
    "trailing-bytes__one_extra": manifest(*BASE_ARGS) + b"\0",
    "checksum-mismatch__flipped_trailer":
        manifest(*BASE_ARGS)[:-1] + bytes([manifest(*BASE_ARGS)[-1] ^ 1]),
    "checksum-mismatch__flipped_body": (lambda raw: raw[:40] +
        bytes([raw[40] ^ 0x80]) + raw[41:])(manifest(*BASE_ARGS)),
    # Semantic rejections (checksum valid, content contradictory).
    "base-with-parent__gen0": manifest(KIND_BASE, 1, 0, 0xBEEF, [(0xAA, 64)]),
    "delta-without-parent__gen1": manifest(KIND_DELTA, 1, 1, 0, [(0xAA, 64)]),
    "zero-chunk-size__second_entry":
        manifest(KIND_BASE, 1, 0, 0, [(0xAA, 64), (0xBB, 0)]),
    "duplicate-chunk__same_hash_twice":
        manifest(KIND_BASE, 1, 0, 0, [(0xAA, 64), (0xAA, 64)]),
    # Chain-level rejections: decode ok, validate_chain() pins the status
    # against ok__base_small.
    "dangling-parent__wrong_parent_digest":
        manifest(KIND_DELTA, 42, 1, 0x1122334455667788, [(0x4444, 2048)]),
    "bad-generation__gen7_after_gen0":
        manifest(KIND_DELTA, 42, 7, BASE_DIGEST, [(0x4444, 2048)]),
}


def main():
    for name, data in sorted(CORPUS.items()):
        path = HERE / f"{name}.bin"
        path.write_bytes(data)
        print(f"{path.name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
