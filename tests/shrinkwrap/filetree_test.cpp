#include "shrinkwrap/filetree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pkg/synthetic.hpp"

namespace landlord::shrinkwrap {
namespace {

pkg::Repository versioned_repo() {
  pkg::RepositoryBuilder b;
  b.add({"proj", "1.0", 100 * util::kMiB, pkg::PackageTier::kLibrary, {}});
  b.add({"proj", "2.0", 100 * util::kMiB, pkg::PackageTier::kLibrary, {}});
  b.add({"proj", "3.0", 100 * util::kMiB, pkg::PackageTier::kLibrary, {}});
  b.add({"other", "1.0", 64 * util::kMiB, pkg::PackageTier::kLeaf, {}});
  b.add({"tiny", "1.0", 8192, pkg::PackageTier::kLeaf, {}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(FileTree, Deterministic) {
  const auto repo = versioned_repo();
  FileTreeModel m1(repo), m2(repo);
  const auto f1 = m1.files(pkg::package_id(0));
  const auto f2 = m2.files(pkg::package_id(0));
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].content, f2[i].content);
    EXPECT_EQ(f1[i].size, f2[i].size);
  }
}

TEST(FileTree, FileCountRespectsBounds) {
  const auto repo = versioned_repo();
  FileTreeParams params;
  params.min_files = 3;
  params.max_files = 50;
  FileTreeModel model(repo, params);
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto files = model.files(pkg::package_id(i));
    EXPECT_GE(files.size(), 3u);
    EXPECT_LE(files.size(), 50u);
  }
}

TEST(FileTree, TinyPackageGetsMinFiles) {
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  const auto files = model.files(*repo.find("tiny/1.0"));
  EXPECT_EQ(files.size(), FileTreeParams{}.min_files);
}

TEST(FileTree, AllFileSizesPositiveish) {
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    for (const auto& file : model.files(pkg::package_id(i))) {
      EXPECT_GE(file.size, util::Bytes{0});
    }
  }
}

TEST(FileTree, ConsecutiveVersionsShareContent) {
  const auto repo = versioned_repo();
  FileTreeParams params;
  params.version_share_probability = 0.7;
  FileTreeModel model(repo, params);
  const auto v1 = model.files(*repo.find("proj/1.0"));
  const auto v2 = model.files(*repo.find("proj/2.0"));
  std::set<ChunkHash> h1;
  for (const auto& f : v1) h1.insert(f.content);
  std::size_t shared = 0;
  for (const auto& f : v2) shared += h1.contains(f.content) ? 1u : 0u;
  // With share probability 0.7 and 25 files, the binomial tail below 20%
  // sharing is negligible.
  EXPECT_GT(shared, v2.size() / 5);
  EXPECT_LT(shared, v2.size());  // but a rebuild changes *something*
}

TEST(FileTree, UnrelatedProjectsShareNothing) {
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  std::set<ChunkHash> a;
  for (const auto& f : model.files(*repo.find("proj/1.0"))) a.insert(f.content);
  for (const auto& f : model.files(*repo.find("other/1.0"))) {
    EXPECT_FALSE(a.contains(f.content));
  }
}

TEST(FileTree, SharedFilesHaveIdenticalSizes) {
  // CAS correctness requires equal content hash => equal size.
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  std::map<ChunkHash, util::Bytes> sizes;
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    for (const auto& file : model.files(pkg::package_id(i))) {
      auto [it, inserted] = sizes.emplace(file.content, file.size);
      if (!inserted) {
        EXPECT_EQ(it->second, file.size) << "chunk " << file.content;
      }
    }
  }
}

TEST(FileTree, VersionChainSharingIsTransitive) {
  // v3 may inherit a file unchanged since v1; hash equality must agree
  // across the whole chain (same anchor), not just adjacent versions.
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  const auto v1 = model.files(*repo.find("proj/1.0"));
  const auto v2 = model.files(*repo.find("proj/2.0"));
  const auto v3 = model.files(*repo.find("proj/3.0"));
  const std::size_t n = std::min({v1.size(), v2.size(), v3.size()});
  for (std::size_t f = 0; f < n; ++f) {
    if (v3[f].content == v1[f].content) {
      // If v3 kept v1's file, v2 must have kept it too (no resurrection).
      EXPECT_EQ(v2[f].content, v1[f].content) << "file " << f;
    }
  }
}

TEST(FileTree, TreeBytesInReasonableRangeOfPackageSize) {
  // Cross-version shared files re-anchor sizes, so totals drift from the
  // declared package size but must stay the same order of magnitude.
  const auto repo = versioned_repo();
  FileTreeModel model(repo);
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto id = pkg::package_id(i);
    const auto declared = repo[id].size;
    const auto actual = model.tree_bytes(id);
    EXPECT_GT(actual, declared / 8) << repo[id].key();
    EXPECT_LT(actual, declared * 8) << repo[id].key();
  }
}

TEST(FileTree, WorksOnSyntheticRepository) {
  pkg::SyntheticRepoParams params;
  params.total_packages = 300;
  auto repo = pkg::generate_repository(params, 21);
  ASSERT_TRUE(repo.ok());
  FileTreeModel model(repo.value());
  std::uint64_t total_files = 0;
  for (std::uint32_t i = 0; i < repo.value().size(); ++i) {
    total_files += model.files(pkg::package_id(i)).size();
  }
  EXPECT_GT(total_files, 300u * FileTreeParams{}.min_files - 1);
}

}  // namespace
}  // namespace landlord::shrinkwrap
