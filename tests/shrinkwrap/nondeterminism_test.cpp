// §IV's key insight, demonstrated: "two container images may be
// functionally identical despite having different contents if the build
// process is not strictly deterministic" — so content-level comparison
// fails where specification-level comparison works.
#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "shrinkwrap/builder.hpp"

namespace landlord::shrinkwrap {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 300;
    auto result = pkg::generate_repository(params, 17);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

spec::Specification spec_for(std::initializer_list<std::uint32_t> ids) {
  std::vector<pkg::PackageId> request;
  for (auto i : ids) request.push_back(pkg::package_id(i));
  return spec::Specification::from_request(repo(), request);
}

TEST(Nondeterminism, DeterministicBuilderDigestsAgree) {
  ImageBuilder a(repo()), b(repo());
  const auto spec = spec_for({100, 200});
  EXPECT_EQ(a.build(spec).content_digest, b.build(spec).content_digest);
}

TEST(Nondeterminism, NoisyRebuildsOfSameSpecDifferInContent) {
  BuildNoiseModel noise;
  noise.noise_files = 3;
  ImageBuilder builder(repo(), {}, {}, noise);
  const auto spec = spec_for({100, 200});
  const auto first = builder.build(spec);
  const auto second = builder.build(spec);
  // Functionally identical images (same spec!), different contents —
  // a content-addressed or byte-level cache would treat them as
  // distinct; the specification comparison is what establishes
  // equivalence.
  EXPECT_NE(first.content_digest, second.content_digest);
  EXPECT_TRUE(spec.packages() == spec.packages());  // trivially equal
}

TEST(Nondeterminism, NoiseInflatesBytesAndFiles) {
  BuildNoiseModel noise;
  noise.noise_files = 5;
  noise.noise_file_bytes = 1000;
  ImageBuilder noisy(repo(), {}, {}, noise);
  ImageBuilder clean(repo());
  const auto spec = spec_for({50});
  const auto with_noise = noisy.build(spec);
  const auto without = clean.build(spec);
  EXPECT_EQ(with_noise.bytes, without.bytes + 5000);
  EXPECT_EQ(with_noise.files, without.files + 5);
}

TEST(Nondeterminism, NoiseIsNotDownloaded) {
  BuildNoiseModel noise;
  noise.noise_files = 4;
  ImageBuilder builder(repo(), {}, {}, noise);
  const auto spec = spec_for({50});
  const auto first = builder.build(spec);
  const auto second = builder.build(spec);
  // Noise is generated locally; the rebuild fetches nothing.
  EXPECT_LT(first.fetched_bytes, first.bytes);
  EXPECT_EQ(second.fetched_bytes, util::Bytes{0});
}

TEST(Nondeterminism, DigestIsOrderIndependentForSameContents) {
  // Two specs with the same package set digest identically on cold
  // builders regardless of construction path.
  ImageBuilder a(repo()), b(repo());
  auto s1 = spec_for({10, 20, 30});
  std::vector<pkg::PackageId> reversed = {pkg::package_id(30), pkg::package_id(20),
                                          pkg::package_id(10)};
  auto s2 = spec::Specification::from_request(repo(), reversed);
  EXPECT_EQ(a.build(s1).content_digest, b.build(s2).content_digest);
}

TEST(Nondeterminism, DifferentSpecsDigestDifferently) {
  ImageBuilder a(repo()), b(repo());
  EXPECT_NE(a.build(spec_for({10})).content_digest,
            b.build(spec_for({11})).content_digest);
}

}  // namespace
}  // namespace landlord::shrinkwrap
