// Delta-vs-full equivalence oracle.
//
// The delta store is pure accounting: switching it on must not move a
// single placement. This suite replays identical workloads through two
// Landlords — full-rewrite accounting (the paper's model) and delta
// accounting — across an alpha x merge-policy x chain-depth sweep and
// asserts, request by request, that decisions, image ids, sizes, and
// content digests are bit-identical; that the decision counters agree;
// and that the delta run's full_rewrite_bytes counterfactual equals the
// full run's written_bytes exactly. The same property is pinned across
// sim::run_crash_replay's kill+restore cycles (the image store is
// cleared on restore; decisions still must not move).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "sim/crash.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 400;
    auto result = pkg::generate_repository(params, 77);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

struct Workload {
  std::vector<spec::Specification> specs;
  std::vector<std::uint32_t> stream;
};

Workload small_workload(std::uint64_t seed) {
  WorkloadConfig config;
  config.unique_jobs = 60;
  config.repetitions = 4;
  config.max_initial_selection = 30;
  util::Rng root(seed);
  WorkloadGenerator generator(repo(), config, root.split(1));
  Workload out;
  out.specs = generator.unique_specifications();
  out.stream = generator.request_stream();
  return out;
}

core::CacheConfig cache_config(double alpha, core::MergePolicy policy) {
  core::CacheConfig config;
  config.capacity = 60 * util::kGiB;  // small budget => evictions + splits
  config.alpha = alpha;
  config.policy = policy;
  config.enable_split = true;
  return config;
}

shrinkwrap::DeltaBuildConfig delta_build(std::uint32_t chain_cap) {
  shrinkwrap::DeltaBuildConfig delta;
  delta.enabled = true;
  delta.store.chain_cap = chain_cap;
  return delta;
}

void expect_identical_decisions(const core::JobPlacement& full,
                                const core::JobPlacement& delta,
                                std::size_t request) {
  ASSERT_EQ(full.kind, delta.kind) << "request " << request;
  ASSERT_EQ(core::to_value(full.image), core::to_value(delta.image))
      << "request " << request;
  ASSERT_EQ(full.image_bytes, delta.image_bytes) << "request " << request;
  ASSERT_EQ(full.requested_bytes, delta.requested_bytes) << "request " << request;
  ASSERT_EQ(full.content_digest, delta.content_digest) << "request " << request;
  ASSERT_EQ(full.degraded, delta.degraded) << "request " << request;
  ASSERT_EQ(full.failed, delta.failed) << "request " << request;
}

void expect_identical_counters(const core::CacheCounters& full,
                               const core::CacheCounters& delta) {
  EXPECT_EQ(full.requests, delta.requests);
  EXPECT_EQ(full.hits, delta.hits);
  EXPECT_EQ(full.merges, delta.merges);
  EXPECT_EQ(full.inserts, delta.inserts);
  EXPECT_EQ(full.deletes, delta.deletes);
  EXPECT_EQ(full.splits, delta.splits);
  EXPECT_EQ(full.conflict_rejections, delta.conflict_rejections);
  EXPECT_EQ(full.requested_bytes, delta.requested_bytes);
  // The one sanctioned difference: what a write *costs*. The
  // counterfactual ledger must reproduce the paper's accounting exactly.
  EXPECT_EQ(delta.full_rewrite_bytes, full.written_bytes);
  EXPECT_EQ(full.delta_merges, 0u);
  // The counterfactual ledger is always on: with the cap at 0 it simply
  // mirrors written_bytes.
  EXPECT_EQ(full.full_rewrite_bytes, full.written_bytes);
}

TEST(DeltaOracle, PlacementsBitIdenticalAcrossAlphaPolicyAndDepth) {
  const Workload workload = small_workload(11);
  const double alphas[] = {0.6, 0.9};
  const core::MergePolicy policies[] = {core::MergePolicy::kFirstFit,
                                        core::MergePolicy::kBestFit};
  const std::uint32_t depths[] = {1, 4};
  for (const double alpha : alphas) {
    for (const core::MergePolicy policy : policies) {
      for (const std::uint32_t depth : depths) {
        SCOPED_TRACE(testing::Message()
                     << "alpha=" << alpha << " policy=" << to_string(policy)
                     << " depth=" << depth);
        auto full_config = cache_config(alpha, policy);
        auto delta_config = cache_config(alpha, policy);
        delta_config.delta_chain_cap = depth;
        core::Landlord full(repo(), full_config);
        core::Landlord delta(repo(), delta_config, {}, {}, {},
                             delta_build(depth));
        for (std::size_t i = 0; i < workload.stream.size(); ++i) {
          const auto& spec = workload.specs[workload.stream[i]];
          expect_identical_decisions(full.submit(spec), delta.submit(spec), i);
        }
        expect_identical_counters(full.counters(), delta.counters());
        EXPECT_EQ(full.image_count(), delta.image_count());
        EXPECT_EQ(full.total_bytes(), delta.total_bytes());
        EXPECT_EQ(full.unique_bytes(), delta.unique_bytes());
      }
    }
  }
}

TEST(DeltaOracle, DeltaMergesHappenAndCostLessThanFullRewrites) {
  const Workload workload = small_workload(12);
  auto config = cache_config(0.8, core::MergePolicy::kBestFit);
  config.delta_chain_cap = 4;
  core::Landlord landlord(repo(), config, {}, {}, {}, delta_build(4));
  for (const std::uint32_t index : workload.stream) {
    (void)landlord.submit(workload.specs[index]);
  }
  const auto counters = landlord.counters();
  ASSERT_GT(counters.merges, 0u);
  EXPECT_GT(counters.delta_merges, 0u);
  EXPECT_EQ(counters.delta_merges + counters.repacks, counters.merges);
  // The headline claim committed in BENCH_cas.json: merge bytes shrink.
  EXPECT_LT(counters.written_bytes, counters.full_rewrite_bytes);
  EXPECT_GT(counters.delta_written_bytes, util::Bytes{0});
}

TEST(DeltaOracle, BuilderStoreTracksResidentImagesAndReconciles) {
  const Workload workload = small_workload(13);
  auto config = cache_config(0.8, core::MergePolicy::kBestFit);
  config.delta_chain_cap = 3;
  core::Landlord landlord(repo(), config, {}, {}, {}, delta_build(3));
  for (const std::uint32_t index : workload.stream) {
    (void)landlord.submit(workload.specs[index]);
  }
  const auto& store = landlord.builder().image_store();
  // Evictions fire the listener, so the store holds at most the resident
  // set (images served purely as hits since the store last saw them may
  // have no chain; never the other way around).
  EXPECT_LE(store.image_count(), landlord.image_count());
  EXPECT_GT(store.image_count(), 0u);
  EXPECT_EQ(store.reconcile(), std::nullopt);
  EXPECT_GT(store.stats().delta_writes, 0u);
}

TEST(DeltaOracle, CrashReplayDecisionsUnmovedByDeltaAccounting) {
  CrashReplayConfig base;
  base.cache = cache_config(0.8, core::MergePolicy::kBestFit);
  base.workload.unique_jobs = 50;
  base.workload.repetitions = 4;
  base.workload.max_initial_selection = 25;
  base.seed = 21;
  base.crash.checkpoint_every = 40;
  base.crash.crash_every = 100;

  CrashReplayConfig with_delta = base;
  with_delta.cache.delta_chain_cap = 4;
  with_delta.delta = delta_build(4);

  const auto full = run_crash_replay(repo(), base);
  const auto delta = run_crash_replay(repo(), with_delta);

  EXPECT_EQ(full.requests, delta.requests);
  EXPECT_EQ(full.crashes, delta.crashes);
  EXPECT_EQ(full.checkpoints, delta.checkpoints);
  EXPECT_EQ(full.images_recovered, delta.images_recovered);
  EXPECT_EQ(full.records_lost, delta.records_lost);
  EXPECT_EQ(full.degraded_placements, delta.degraded_placements);
  EXPECT_EQ(full.failed_placements, delta.failed_placements);
  EXPECT_EQ(full.index_divergences, 0u);
  EXPECT_EQ(delta.index_divergences, 0u);
  expect_identical_counters(full.counters, delta.counters);
  EXPECT_EQ(full.final_image_count, delta.final_image_count);
  EXPECT_EQ(full.final_total_bytes, delta.final_total_bytes);
  EXPECT_EQ(full.final_unique_bytes, delta.final_unique_bytes);
}

TEST(DeltaOracle, RestoreClearsTheStoreAndKeepsReconciling) {
  const Workload workload = small_workload(14);
  auto config = cache_config(0.8, core::MergePolicy::kBestFit);
  config.delta_chain_cap = 2;
  core::Landlord landlord(repo(), config, {}, {}, {}, delta_build(2));
  std::size_t half = workload.stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    (void)landlord.submit(workload.specs[workload.stream[i]]);
  }
  std::ostringstream snapshot;
  core::save_cache(snapshot, landlord.cache(), repo(),
                   core::SnapshotFormat::kV2);
  std::istringstream in(snapshot.str());
  ASSERT_TRUE(landlord.restore(in).ok());
  // Restore clears the chains (decision ids restart; stale chains must
  // not collide with reborn ids) and re-wires the eviction listener.
  EXPECT_EQ(landlord.builder().image_store().image_count(), 0u);
  for (std::size_t i = half; i < workload.stream.size(); ++i) {
    (void)landlord.submit(workload.specs[workload.stream[i]]);
  }
  EXPECT_EQ(landlord.builder().image_store().reconcile(), std::nullopt);
  EXPECT_LE(landlord.builder().image_store().image_count(),
            landlord.image_count());
}

}  // namespace
}  // namespace landlord::sim
