// Chaos/property suite for the fault-tolerant dispatch plane: worker
// churn and resumable transfers (sim::WorkerPool + FaultOp::kWorkerCrash
// / kWorkerTransfer), health-gated multi-site failover
// (sim::run_multisite + kSiteOutage circuit breakers), and the
// head-node invariants under sustained failure.
//
// Everything here leans on the fault layer's core guarantee: a verdict
// is a pure function of (plan, op class, occurrence index), so any
// churn schedule replays bit-for-bit — asserted directly below by
// running identical configurations twice and comparing every counter.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "sim/multisite.hpp"
#include "sim/parallel.hpp"
#include "sim/workers.hpp"
#include "sim/workload.hpp"

namespace landlord {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 17);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::CacheConfig cache_config(double alpha = 0.8, std::uint32_t shards = 1) {
  core::CacheConfig c;
  c.alpha = alpha;
  c.capacity = repo().total_bytes();
  c.shards = shards;
  return c;
}

struct Workload {
  std::vector<spec::Specification> specs;
  std::vector<std::uint32_t> stream;
};

Workload workload(std::uint32_t jobs = 60, std::uint64_t seed = 5) {
  sim::WorkloadConfig config;
  config.unique_jobs = jobs;
  config.repetitions = 3;
  config.max_initial_selection = 12;
  sim::WorkloadGenerator generator(repo(), config, util::Rng(seed));
  return Workload{generator.unique_specifications(),
                  generator.request_stream()};
}

/// A synthetic head-node image; the pool only reads id/bytes/version.
core::Image image_of(std::uint64_t id, util::Bytes bytes,
                     std::uint32_t version = 0) {
  core::Image image;
  image.id = core::ImageId{id};
  image.bytes = bytes;
  image.version = version;
  return image;
}

void expect_same_dispatch(const sim::DispatchCounters& a,
                          const sim::DispatchCounters& b) {
  EXPECT_EQ(a.worker_crashes, b.worker_crashes);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.cold_rejoins, b.cold_rejoins);
  EXPECT_EQ(a.direct_transfers, b.direct_transfers);
  EXPECT_EQ(a.transfer_faults, b.transfer_faults);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.failed_transfers, b.failed_transfers);
  EXPECT_EQ(a.resumed_bytes, b.resumed_bytes);
  EXPECT_EQ(a.reshipped_bytes, b.reshipped_bytes);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);  // same jitter sequence
}

void expect_same_result(const sim::TransferResult& a,
                        const sim::TransferResult& b) {
  EXPECT_EQ(a.head_counters.requests, b.head_counters.requests);
  EXPECT_EQ(a.head_counters.hits, b.head_counters.hits);
  EXPECT_EQ(a.head_counters.merges, b.head_counters.merges);
  EXPECT_EQ(a.head_counters.inserts, b.head_counters.inserts);
  EXPECT_EQ(a.head_counters.deletes, b.head_counters.deletes);
  EXPECT_EQ(a.head_counters.written_bytes, b.head_counters.written_bytes);
  EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.stale_refetches, b.stale_refetches);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.dispatches, b.dispatches);
  expect_same_dispatch(a.dispatch, b.dispatch);
}

/// Every job completes, one way or another: served from scratch, shipped
/// to scratch, or streamed directly from the head node.
void expect_all_jobs_complete(const sim::WorkerPool& pool) {
  EXPECT_EQ(pool.transfers() + pool.local_hits() +
                pool.dispatch_counters().direct_transfers,
            pool.dispatches());
}

// ---- Worker churn ---------------------------------------------------

TEST(WorkerChurn, CrashLosesScratchAndRejoinsCold) {
  sim::WorkerPoolConfig config;
  config.workers = 2;
  config.crash_downtime = 2;
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kWorkerCrash, 2);  // third dispatch kills its target
  fault::FaultInjector injector(plan);

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  const auto img = image_of(7, 1000);

  // Dispatches 1+2 (round-robin): both workers warm up with a copy.
  EXPECT_EQ(pool.dispatch(img), 1000u);
  EXPECT_EQ(pool.dispatch(img), 1000u);
  EXPECT_EQ(pool.local_hits(), 0u);

  // Dispatch 3 targets worker 0 again — the oracle crashes it. The job
  // re-dispatches to worker 1, which still holds the copy.
  EXPECT_EQ(pool.dispatch(img), 0u);
  EXPECT_EQ(pool.dispatch_counters().worker_crashes, 1u);
  EXPECT_EQ(pool.dispatch_counters().redispatches, 1u);
  EXPECT_EQ(pool.local_hits(), 1u);
  EXPECT_EQ(pool.healthy_workers(), 1u);

  // Dispatch 4 targets worker 1: local hit. Dispatch 5 targets worker 0,
  // whose downtime (2 dispatches) has now elapsed — it rejoins cold and
  // must re-transfer the image it lost.
  EXPECT_EQ(pool.dispatch(img), 0u);
  EXPECT_EQ(pool.dispatch(img), 1000u);
  EXPECT_EQ(pool.dispatch_counters().cold_rejoins, 1u);
  EXPECT_EQ(pool.healthy_workers(), 2u);
  expect_all_jobs_complete(pool);
}

TEST(WorkerChurn, AllWorkersDownDrainsAsDirectTransfers) {
  sim::WorkerPoolConfig config;
  config.workers = 1;
  config.crash_downtime = 1'000'000;  // never rejoins within the test
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kWorkerCrash, 0);
  fault::FaultInjector injector(plan);

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  const auto img = image_of(3, 500);
  util::Bytes total = 0;
  for (int i = 0; i < 20; ++i) total += pool.dispatch(img);

  // The whole pool is down from the first dispatch on; every job still
  // completes via a direct head-node stream. Nothing hangs, nothing
  // errors, nothing lands in scratch.
  EXPECT_EQ(pool.healthy_workers(), 0u);
  EXPECT_EQ(pool.dispatch_counters().direct_transfers, 20u);
  EXPECT_EQ(pool.transfers(), 0u);
  EXPECT_EQ(pool.local_hits(), 0u);
  EXPECT_EQ(total, 20u * 500u);
  expect_all_jobs_complete(pool);
}

TEST(WorkerChurn, OneWorkerAliveStillCompletesEveryJob) {
  sim::WorkerPoolConfig config;
  config.workers = 4;
  config.crash_downtime = 1'000'000;
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kWorkerCrash, 0)
      .at(fault::FaultOp::kWorkerCrash, 1)
      .at(fault::FaultOp::kWorkerCrash, 2);
  fault::FaultInjector injector(plan);

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  const auto img = image_of(11, 800);
  for (int i = 0; i < 24; ++i) (void)pool.dispatch(img);

  EXPECT_EQ(pool.dispatch_counters().worker_crashes, 3u);
  EXPECT_EQ(pool.healthy_workers(), 1u);
  EXPECT_EQ(pool.dispatch_counters().direct_transfers, 0u);
  // Dispatches 1-3 each crash their round-robin target, so the job
  // re-dispatches to the next worker, which pulls the image cold — the
  // crash destroys each copy right after it lands. From dispatch 4 on,
  // the lone survivor serves everything from its scratch copy.
  EXPECT_EQ(pool.transfers(), 3u);
  EXPECT_EQ(pool.local_hits(), 21u);
  expect_all_jobs_complete(pool);
}

// ---- Resumable transfers --------------------------------------------

TEST(Transfers, ResumeKeepsThePartialBytes) {
  sim::WorkerPoolConfig config;
  config.workers = 1;
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kWorkerTransfer, 0);  // first transfer cut once
  fault::FaultInjector injector(plan);

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  const util::Bytes bytes = 4000;
  const util::Bytes wire = pool.dispatch(image_of(1, bytes));

  // Byte-granular resume: the cut prefix (25% on the first injection)
  // counts once; total wire bytes equal the image exactly.
  EXPECT_EQ(wire, bytes);
  EXPECT_EQ(pool.dispatch_counters().transfer_faults, 1u);
  EXPECT_EQ(pool.dispatch_counters().transfer_retries, 1u);
  EXPECT_EQ(pool.dispatch_counters().failed_transfers, 0u);
  EXPECT_EQ(pool.dispatch_counters().resumed_bytes, bytes / 4);
  EXPECT_EQ(pool.dispatch_counters().reshipped_bytes, 0u);
  EXPECT_GT(pool.dispatch_counters().backoff_seconds, 0.0);
  EXPECT_EQ(pool.transfers(), 1u);
}

TEST(Transfers, WithoutResumeTheCutBytesAreReshipped) {
  sim::WorkerPoolConfig config;
  config.workers = 1;
  config.resume_transfers = false;
  fault::FaultPlan plan;
  plan.at(fault::FaultOp::kWorkerTransfer, 0);
  fault::FaultInjector injector(plan);

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  const util::Bytes bytes = 4000;
  const util::Bytes wire = pool.dispatch(image_of(1, bytes));

  // The wasted prefix ships again from zero: wire cost exceeds the image
  // by exactly the thrown-away cut.
  EXPECT_EQ(wire, bytes + bytes / 4);
  EXPECT_EQ(pool.dispatch_counters().resumed_bytes, 0u);
  EXPECT_EQ(pool.dispatch_counters().reshipped_bytes, bytes / 4);
  EXPECT_EQ(pool.transfers(), 1u);
}

TEST(Transfers, ExhaustedRetryBudgetFallsBackToDirectStream) {
  sim::WorkerPoolConfig config;
  config.workers = 2;
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kWorkerTransfer, 1.0);  // every attempt cut
  fault::FaultInjector injector(plan);
  fault::BackoffPolicy backoff;
  backoff.max_retries = 1;

  sim::WorkerPool pool(config, util::Rng(1));
  pool.set_fault_injector(&injector);
  pool.set_backoff_policy(backoff);
  for (int i = 0; i < 10; ++i) (void)pool.dispatch(image_of(2, 1000));

  // No transfer ever lands in scratch, so every job degrades to a direct
  // stream — and still completes.
  EXPECT_EQ(pool.transfers(), 0u);
  EXPECT_EQ(pool.local_hits(), 0u);
  EXPECT_EQ(pool.dispatch_counters().failed_transfers, 10u);
  EXPECT_EQ(pool.dispatch_counters().direct_transfers, 10u);
  EXPECT_EQ(pool.dispatch_counters().transfer_retries, 10u);
  expect_all_jobs_complete(pool);
}

// ---- Replay / equivalence -------------------------------------------

sim::DispatchFaultConfig churn_faults() {
  sim::DispatchFaultConfig faults;
  faults.plan.fail(fault::FaultOp::kWorkerCrash, 0.05)
      .fail(fault::FaultOp::kWorkerTransfer, 0.2)
      .at(fault::FaultOp::kWorkerCrash, 3);
  faults.plan.seed = 71;
  return faults;
}

sim::WorkerPoolConfig churn_pool_config() {
  sim::WorkerPoolConfig config;
  config.workers = 4;
  config.scratch_per_worker = repo().total_bytes() / 16;  // force evictions
  config.crash_downtime = 6;
  return config;
}

TEST(DispatchReplay, ZeroFaultPlanIsBitIdenticalToUnwiredPool) {
  const auto load = workload();
  const auto plain = sim::run_with_workers(
      repo(), cache_config(), churn_pool_config(), load.specs, load.stream, 9);
  const auto wired =
      sim::run_with_workers(repo(), cache_config(), churn_pool_config(),
                            load.specs, load.stream, 9,
                            sim::DispatchFaultConfig{});  // empty plan
  expect_same_result(plain, wired);
  EXPECT_EQ(wired.dispatch.worker_crashes, 0u);
  EXPECT_EQ(wired.dispatch.transfer_faults, 0u);
}

TEST(DispatchReplay, ChurnScheduleReplaysBitForBit) {
  const auto load = workload();
  const auto first =
      sim::run_with_workers(repo(), cache_config(), churn_pool_config(),
                            load.specs, load.stream, 9, churn_faults());
  const auto second =
      sim::run_with_workers(repo(), cache_config(), churn_pool_config(),
                            load.specs, load.stream, 9, churn_faults());
  expect_same_result(first, second);
  EXPECT_GT(first.dispatch.worker_crashes, 0u);
  EXPECT_GT(first.dispatch.transfer_faults, 0u);
  EXPECT_GT(first.dispatch.resumed_bytes, 0u);
}

TEST(DispatchReplay, OrderedEvictionIndexMatchesTheScan) {
  // Satellite: WorkerPool::evict_worker through the ordered
  // (last_used, id) index vs. the O(n) scan — same faults, same
  // workload, bit-identical counters. Random scheduling + tight scratch
  // keeps the eviction path hot.
  const auto load = workload(80, 11);
  auto indexed = churn_pool_config();
  indexed.scheduling = sim::Scheduling::kRandom;
  indexed.scratch_per_worker = repo().total_bytes() / 48;
  auto scanned = indexed;
  scanned.ordered_eviction = false;

  const auto a = sim::run_with_workers(repo(), cache_config(), indexed,
                                       load.specs, load.stream, 9,
                                       churn_faults());
  const auto b = sim::run_with_workers(repo(), cache_config(), scanned,
                                       load.specs, load.stream, 9,
                                       churn_faults());
  expect_same_result(a, b);
  EXPECT_GT(a.transfers, 0u);  // the eviction path actually ran
}

TEST(DispatchReplay, SequentialAndShardedCachesAgreeOnDispatchCounters) {
  // Satellite: the same churn plan replayed through the sequential Cache
  // and a single-threaded ShardedCache, with the decision index on and
  // off, must produce identical dispatch-plane counters — the head-node
  // decision layer is interchangeable below the dispatch plane.
  const auto load = workload(70, 13);
  std::vector<sim::TransferResult> results;
  for (const std::uint32_t shards : {1u, 4u}) {
    for (const bool index : {true, false}) {
      auto config = cache_config(0.8, shards);
      config.decision_index = index;
      results.push_back(sim::run_with_workers(repo(), config,
                                              churn_pool_config(), load.specs,
                                              load.stream, 9, churn_faults()));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_result(results[0], results[i]);
  }
  EXPECT_GT(results[0].dispatch.worker_crashes, 0u);
}

// ---- Head-node invariants under sustained churn ---------------------

TEST(HeadNodeInvariants, HoldUnderWorkerAndBuilderChurn) {
  fault::FaultPlan plan;
  plan.fail(fault::FaultOp::kBuilderDownload, 0.25)
      .fail(fault::FaultOp::kMergeRewrite, 0.2)
      .fail(fault::FaultOp::kWorkerCrash, 0.1)
      .fail(fault::FaultOp::kWorkerTransfer, 0.3);
  plan.seed = 23;
  fault::FaultInjector injector(plan);

  core::Landlord landlord(repo(), cache_config());
  landlord.set_fault_injector(&injector);
  sim::WorkerPoolConfig pool_config;
  pool_config.workers = 3;
  pool_config.scratch_per_worker = repo().total_bytes() / 8;
  pool_config.crash_downtime = 4;
  sim::WorkerPool pool(pool_config, util::Rng(3));
  pool.set_fault_injector(&injector);

  const auto load = workload(50, 29);
  for (const auto index : load.stream) {
    const auto placement = landlord.submit(load.specs[index]);
    // Acceptance (b): no head-node invariant bends, no matter what the
    // dispatch plane below is doing.
    const auto violation = core::placement_violation(landlord, placement);
    EXPECT_EQ(violation, std::nullopt) << *violation;
    const auto divergence = landlord.check_decision_index();
    EXPECT_EQ(divergence, std::nullopt) << *divergence;
    if (placement.failed) continue;
    const auto image = landlord.find(placement.image);
    if (image.has_value()) (void)pool.dispatch(*image);
  }
  expect_all_jobs_complete(pool);
  EXPECT_GT(injector.total_injected(), 0u);
  EXPECT_GT(pool.dispatch_counters().worker_crashes, 0u);
}

// ---- Multi-site failover --------------------------------------------

spec::Specification single_spec() {
  std::vector<pkg::PackageId> request{pkg::package_id(4), pkg::package_id(9),
                                      pkg::package_id(30)};
  return spec::Specification::from_request(repo(), request);
}

std::uint32_t home_site_of(const spec::Specification& spec,
                           std::uint32_t sites) {
  // Derive the affinity home empirically from a fault-free run.
  sim::MultiSiteConfig config;
  config.sites = sites;
  config.cache = cache_config();
  const auto result = sim::run_multisite(repo(), config, {spec}, {0}, 1);
  for (std::uint32_t s = 0; s < sites; ++s) {
    if (result.per_site[s].requests > 0) return s;
  }
  ADD_FAILURE() << "no site served the probe request";
  return 0;
}

TEST(MultiSiteFailover, BreakerOpensFailsOverAndRecloses) {
  // Acceptance (c): outage at the home site -> three consecutive
  // failures trip the breaker -> affinity degrades to the next site by
  // hash -> the half-open probe succeeds after the cooldown -> breaker
  // re-closes and traffic returns home. Consultation schedule (site
  // attempts, one spec repeated 10x): requests 0-2 consult home then
  // fallback (occurrences 0/1, 2/3, 4/5), requests 3-5 consult only the
  // fallback while home is open (6-8), request 6 probes home (9),
  // requests 7-9 stay home (10-12). Failing occurrences {0,2,4} is
  // exactly "home down for three requests".
  const auto spec = single_spec();
  const std::uint32_t home = home_site_of(spec, 3);
  const std::uint32_t fallback = (home + 1) % 3;

  sim::MultiSiteConfig config;
  config.sites = 3;
  config.cache = cache_config();
  config.breaker.failure_threshold = 3;
  config.breaker.open_cooldown = 4;
  config.faults.at(fault::FaultOp::kSiteOutage, 0)
      .at(fault::FaultOp::kSiteOutage, 2)
      .at(fault::FaultOp::kSiteOutage, 4);

  const std::vector<std::uint32_t> stream(10, 0);
  const auto result = sim::run_multisite(repo(), config, {spec}, stream, 1);

  const auto& health = result.site_health[home];
  EXPECT_EQ(health.outage_failures, 3u);
  EXPECT_EQ(health.opens, 1u);
  EXPECT_EQ(health.half_opens, 1u);
  EXPECT_EQ(health.probes, 1u);
  EXPECT_EQ(health.closes, 1u);
  EXPECT_EQ(health.state, sim::BreakerState::kClosed);

  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_EQ(result.failover_placements, 6u);  // requests 0-5
  EXPECT_EQ(result.per_site[fallback].requests, 6u);
  EXPECT_EQ(result.per_site[home].requests, 4u);
  EXPECT_EQ(result.breaker_transitions, 3u);  // open, half-open, closed
  // The failover duplication cost: the fallback site had to build the
  // image its home would otherwise serve.
  EXPECT_GT(result.failover_written_bytes, 0u);
  EXPECT_EQ(result.failover_written_bytes,
            result.per_site[fallback].written_bytes);
}

TEST(MultiSiteFailover, AllSitesDownDrainsEveryRequestAsError) {
  const auto load = workload(20, 31);
  sim::MultiSiteConfig config;
  config.sites = 2;
  config.cache = cache_config();
  config.faults.fail(fault::FaultOp::kSiteOutage, 1.0);

  const auto result =
      sim::run_multisite(repo(), config, load.specs, load.stream, 1);

  // Total outage: nothing is ever served, every request drains as an
  // error (and the run terminates — no hang, no UB).
  EXPECT_EQ(result.failed_requests, load.stream.size());
  for (const auto& site : result.per_site) EXPECT_EQ(site.requests, 0u);
  EXPECT_GT(result.outage_failures, 0u);
  for (const auto& health : result.site_health) {
    EXPECT_NE(health.state, sim::BreakerState::kClosed);
  }
}

TEST(MultiSiteFailover, NeverFiringPlanMatchesTheFaultFreeFastPath) {
  // A plan whose only fault is scheduled far beyond the stream must be
  // observationally identical to no plan at all (breakers all closed,
  // zero failovers, same per-site counters).
  const auto load = workload(40, 37);
  sim::MultiSiteConfig fault_free;
  fault_free.sites = 4;
  fault_free.cache = cache_config();
  auto never = fault_free;
  never.faults.at(fault::FaultOp::kSiteOutage, 1u << 30);

  const auto a =
      sim::run_multisite(repo(), fault_free, load.specs, load.stream, 1);
  const auto b = sim::run_multisite(repo(), never, load.specs, load.stream, 1);

  ASSERT_EQ(a.per_site.size(), b.per_site.size());
  for (std::size_t s = 0; s < a.per_site.size(); ++s) {
    EXPECT_EQ(a.per_site[s].requests, b.per_site[s].requests);
    EXPECT_EQ(a.per_site[s].hits, b.per_site[s].hits);
    EXPECT_EQ(a.per_site[s].written_bytes, b.per_site[s].written_bytes);
    EXPECT_EQ(b.site_health[s].state, sim::BreakerState::kClosed);
  }
  EXPECT_EQ(a.total_cached_bytes, b.total_cached_bytes);
  EXPECT_EQ(a.global_unique_bytes, b.global_unique_bytes);
  EXPECT_EQ(b.failover_placements, 0u);
  EXPECT_EQ(b.failed_requests, 0u);
  EXPECT_EQ(b.breaker_transitions, 0u);
}

TEST(MultiSiteFailover, OutageScheduleReplaysBitForBit) {
  const auto load = workload(40, 41);
  sim::MultiSiteConfig config;
  config.sites = 3;
  config.cache = cache_config();
  config.faults.fail(fault::FaultOp::kSiteOutage, 0.15);
  config.faults.seed = 77;
  config.breaker.failure_threshold = 2;
  config.breaker.open_cooldown = 8;

  const auto a = sim::run_multisite(repo(), config, load.specs, load.stream, 1);
  const auto b = sim::run_multisite(repo(), config, load.specs, load.stream, 1);

  EXPECT_EQ(a.failover_placements, b.failover_placements);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.outage_failures, b.outage_failures);
  EXPECT_EQ(a.breaker_transitions, b.breaker_transitions);
  EXPECT_EQ(a.failover_written_bytes, b.failover_written_bytes);
  for (std::size_t s = 0; s < a.site_health.size(); ++s) {
    EXPECT_EQ(a.site_health[s].state, b.site_health[s].state);
    EXPECT_EQ(a.site_health[s].outage_failures,
              b.site_health[s].outage_failures);
    EXPECT_EQ(a.site_health[s].opens, b.site_health[s].opens);
    EXPECT_EQ(a.site_health[s].closes, b.site_health[s].closes);
    EXPECT_EQ(a.per_site[s].requests, b.per_site[s].requests);
    EXPECT_EQ(a.per_site[s].written_bytes, b.per_site[s].written_bytes);
  }
  EXPECT_GT(a.outage_failures, 0u);
  // Every request either landed somewhere or drained as an error.
  std::uint64_t served = 0;
  for (const auto& site : a.per_site) served += site.requests;
  EXPECT_EQ(served + a.failed_requests, load.stream.size());
}

// ---- Observability reconciliation -----------------------------------

TEST(DispatchObservability, MetricFamiliesReconcileWithCounters) {
  obs::Observability obs(1 << 12);
  const auto load = workload(50, 43);
  const auto result =
      sim::run_with_workers(repo(), cache_config(), churn_pool_config(),
                            load.specs, load.stream, 9, churn_faults(), &obs);

  obs::Registry& reg = obs.registry;
  const auto& d = result.dispatch;
  EXPECT_EQ(reg.counter("landlord_dispatch_transfers_total").value(),
            result.transfers);
  EXPECT_EQ(reg.counter("landlord_dispatch_transferred_bytes_total").value(),
            result.transferred_bytes);
  EXPECT_EQ(reg.counter("landlord_dispatch_local_hits_total").value(),
            result.local_hits);
  EXPECT_EQ(reg.counter("landlord_dispatch_stale_refetches_total").value(),
            result.stale_refetches);
  EXPECT_EQ(reg.counter("landlord_dispatch_worker_crashes_total").value(),
            d.worker_crashes);
  EXPECT_EQ(reg.counter("landlord_dispatch_redispatches_total").value(),
            d.redispatches);
  EXPECT_EQ(reg.counter("landlord_dispatch_cold_rejoins_total").value(),
            d.cold_rejoins);
  EXPECT_EQ(reg.counter("landlord_dispatch_direct_transfers_total").value(),
            d.direct_transfers);
  EXPECT_EQ(reg.counter("landlord_dispatch_transfer_faults_total").value(),
            d.transfer_faults);
  EXPECT_EQ(reg.counter("landlord_dispatch_transfer_retries_total").value(),
            d.transfer_retries);
  EXPECT_EQ(reg.counter("landlord_dispatch_failed_transfers_total").value(),
            d.failed_transfers);
  EXPECT_EQ(
      reg.counter("landlord_dispatch_transfer_resumed_bytes_total").value(),
      d.resumed_bytes);
  EXPECT_EQ(
      reg.counter("landlord_dispatch_transfer_reshipped_bytes_total").value(),
      d.reshipped_bytes);
  EXPECT_DOUBLE_EQ(reg.gauge("landlord_dispatch_backoff_seconds").value(),
                   d.backoff_seconds);
  EXPECT_GT(d.transfer_faults, 0u);

  // The trace saw the churn.
  bool saw_crash = false;
  for (const auto& event : obs.trace.snapshot()) {
    if (event.kind == obs::EventKind::kWorkerCrash) saw_crash = true;
  }
  EXPECT_TRUE(saw_crash);
}

TEST(DispatchObservability, SiteFamiliesReconcileWithMultiSiteResult) {
  obs::Observability obs(1 << 12);
  const auto load = workload(40, 47);
  sim::MultiSiteConfig config;
  config.sites = 3;
  config.cache = cache_config();
  config.faults.fail(fault::FaultOp::kSiteOutage, 0.2);
  config.breaker.failure_threshold = 2;
  config.breaker.open_cooldown = 6;
  config.obs = &obs;

  const auto result =
      sim::run_multisite(repo(), config, load.specs, load.stream, 1);

  obs::Registry& reg = obs.registry;
  EXPECT_EQ(reg.counter("landlord_dispatch_site_outages_total").value(),
            result.outage_failures);
  EXPECT_EQ(reg.counter("landlord_dispatch_failovers_total").value(),
            result.failover_placements);
  EXPECT_EQ(reg.counter("landlord_dispatch_failed_requests_total").value(),
            result.failed_requests);
  EXPECT_EQ(
      reg.counter("landlord_dispatch_failover_written_bytes_total").value(),
      result.failover_written_bytes);
  std::uint64_t transitions = 0;
  for (const char* to : {"open", "half-open", "closed"}) {
    transitions +=
        reg.counter("landlord_dispatch_breaker_transitions_total", {{"to", to}})
            .value();
  }
  EXPECT_EQ(transitions, result.breaker_transitions);
  EXPECT_GT(result.outage_failures, 0u);
}

// ---- Parallel driver with the dispatch plane ------------------------

TEST(ParallelDispatch, SingleThreadReplayIsDeterministic) {
  sim::ParallelConfig config;
  config.cache = cache_config(0.8, 4);
  config.workload.unique_jobs = 60;
  config.workload.repetitions = 3;
  config.workload.max_initial_selection = 12;
  config.seed = 5;
  config.threads = 1;
  config.dispatch = true;
  config.workers.workers = 4;
  config.workers.crash_downtime = 6;
  config.faults.fail(fault::FaultOp::kWorkerCrash, 0.05)
      .fail(fault::FaultOp::kWorkerTransfer, 0.2);
  config.faults.seed = 71;

  const auto a = sim::run_parallel(repo(), config);
  const auto b = sim::run_parallel(repo(), config);
  EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.stale_refetches, b.stale_refetches);
  expect_same_dispatch(a.dispatch, b.dispatch);
  EXPECT_GT(a.dispatch.transfer_faults, 0u);
}

TEST(ParallelDispatch, MultiThreadStormCompletesEveryJob) {
  sim::ParallelConfig config;
  config.cache = cache_config(0.8, 4);
  config.workload.unique_jobs = 80;
  config.workload.repetitions = 4;
  config.workload.max_initial_selection = 12;
  config.seed = 7;
  config.threads = 4;
  config.dispatch = true;
  config.workers.workers = 4;
  config.workers.scratch_per_worker = repo().total_bytes() / 16;
  config.workers.crash_downtime = 6;
  config.faults.fail(fault::FaultOp::kWorkerCrash, 0.05)
      .fail(fault::FaultOp::kWorkerTransfer, 0.2);

  const auto result = sim::run_parallel(repo(), config);
  // Schedule-dependent, but invariant-preserving: every dispatched job
  // completed one way or another. Dispatches can trail requests by the
  // jobs whose image a concurrent thread evicted between the decision
  // and the find() (the sequential path's toctou_retries window).
  EXPECT_EQ(result.transfers + result.local_hits +
                result.dispatch.direct_transfers,
            result.dispatches);
  EXPECT_LE(result.dispatches, result.counters.requests);
  EXPECT_GE(result.dispatches,
            result.counters.requests - result.counters.requests / 10);
}

}  // namespace
}  // namespace landlord
