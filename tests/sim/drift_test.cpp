// Workload drift: evolved specifications (version upgrades) stay valid
// and stay *close* in Jaccard terms — which is exactly why LANDLORD's
// merging absorbs gradual software evolution.
#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/driver.hpp"
#include "sim/workload.hpp"
#include "spec/jaccard.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 1000;
    auto result = pkg::generate_repository(params, 121);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

WorkloadGenerator generator(std::uint64_t seed = 3) {
  WorkloadConfig config;
  config.unique_jobs = 10;
  config.max_initial_selection = 15;
  return WorkloadGenerator(repo(), config, util::Rng(seed));
}

TEST(Drift, ZeroProbabilityIsIdentityUpToReclosure) {
  auto gen = generator();
  const auto spec = gen.next_specification();
  const auto evolved = gen.evolved_specification(spec, 0.0);
  EXPECT_TRUE(evolved.packages() == spec.packages());
}

TEST(Drift, EvolvedSpecsAreDependencyClosed) {
  auto gen = generator();
  for (int i = 0; i < 5; ++i) {
    const auto spec = gen.next_specification();
    const auto evolved = gen.evolved_specification(spec, 0.5);
    bool closed = true;
    evolved.packages().for_each([&](pkg::PackageId id) {
      for (pkg::PackageId dep : repo()[id].deps) {
        closed &= evolved.packages().contains(dep);
      }
    });
    EXPECT_TRUE(closed);
    EXPECT_FALSE(evolved.empty());
  }
}

TEST(Drift, ModerateDriftKeepsSpecsClose) {
  // A 20% upgrade pass should leave the evolved spec within moderate
  // Jaccard distance — the regime where merging still works.
  auto gen = generator();
  double total_distance = 0.0;
  int samples = 0;
  for (int i = 0; i < 10; ++i) {
    const auto spec = gen.next_specification();
    const auto evolved = gen.evolved_specification(spec, 0.2);
    total_distance += spec::jaccard_distance(spec.packages(), evolved.packages());
    ++samples;
  }
  EXPECT_LT(total_distance / samples, 0.6);
  EXPECT_GT(total_distance / samples, 0.0);  // something moved
}

TEST(Drift, FullUpgradeChangesMostVersionedPackages) {
  auto gen = generator();
  const auto spec = gen.next_specification();
  const auto evolved = gen.evolved_specification(spec, 1.0);
  // The evolved set must differ unless every member was already newest.
  const pkg::VersionChains chains(repo());
  bool any_upgradable = false;
  spec.packages().for_each([&](pkg::PackageId id) {
    any_upgradable |= chains.successor(id).has_value();
  });
  if (any_upgradable) {
    EXPECT_FALSE(evolved.packages() == spec.packages());
  }
}

TEST(Drift, ProvenanceMarksEvolution) {
  auto gen = generator();
  const auto spec = gen.next_specification();
  const auto evolved = gen.evolved_specification(spec, 0.3);
  EXPECT_NE(evolved.provenance().find(":evolved"), std::string::npos);
}

TEST(Drift, DriftedStreamStillMergesUnderModerateAlpha) {
  // Simulate generational drift: each "release cycle" evolves every spec
  // and replays it. Merging keeps absorbing the upgraded variants.
  auto gen = generator(9);
  WorkloadConfig config;
  config.unique_jobs = 20;
  config.max_initial_selection = 10;
  WorkloadGenerator base(repo(), config, util::Rng(9));
  auto specs = base.unique_specifications();

  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = repo().total_bytes();
  core::Cache cache(repo(), cache_config);

  for (int generation = 0; generation < 4; ++generation) {
    for (auto& spec : specs) {
      (void)cache.request(spec);
    }
    for (auto& spec : specs) {
      spec = base.evolved_specification(spec, 0.15);
    }
  }
  // Drifted generations merge rather than insert from scratch.
  EXPECT_GT(cache.counters().merges, cache.counters().inserts);
}

}  // namespace
}  // namespace landlord::sim
