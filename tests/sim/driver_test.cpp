#include "sim/driver.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 1000;
    auto result = pkg::generate_repository(params, 51);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

SimulationConfig small_config(double alpha) {
  SimulationConfig config;
  config.cache.alpha = alpha;
  config.cache.capacity = repo().total_bytes() / 3;
  config.workload.unique_jobs = 50;
  config.workload.repetitions = 3;
  config.workload.max_initial_selection = 20;
  config.seed = 9;
  return config;
}

TEST(Driver, ProcessesWholeStream) {
  const auto result = run_simulation(repo(), small_config(0.8));
  EXPECT_EQ(result.counters.requests, 150u);
  EXPECT_EQ(result.counters.requests,
            result.counters.hits + result.counters.merges + result.counters.inserts);
}

TEST(Driver, DeterministicInSeed) {
  const auto a = run_simulation(repo(), small_config(0.8));
  const auto b = run_simulation(repo(), small_config(0.8));
  EXPECT_EQ(a.counters.hits, b.counters.hits);
  EXPECT_EQ(a.counters.merges, b.counters.merges);
  EXPECT_EQ(a.counters.inserts, b.counters.inserts);
  EXPECT_EQ(a.counters.deletes, b.counters.deletes);
  EXPECT_EQ(a.final_total_bytes, b.final_total_bytes);
  EXPECT_EQ(a.counters.written_bytes, b.counters.written_bytes);
}

TEST(Driver, SeedChangesWorkload) {
  auto config = small_config(0.8);
  const auto a = run_simulation(repo(), config);
  config.seed = 10;
  const auto b = run_simulation(repo(), config);
  EXPECT_NE(a.counters.requested_bytes, b.counters.requested_bytes);
}

TEST(Driver, EfficienciesInRange) {
  for (double alpha : {0.0, 0.5, 0.9, 1.0}) {
    const auto result = run_simulation(repo(), small_config(alpha));
    EXPECT_GE(result.cache_efficiency, 0.0);
    EXPECT_LE(result.cache_efficiency, 1.0 + 1e-9);
    EXPECT_GE(result.container_efficiency, 0.0);
    EXPECT_LE(result.container_efficiency, 1.0 + 1e-9);
  }
}

TEST(Driver, UniqueNeverExceedsTotal) {
  const auto result = run_simulation(repo(), small_config(0.7));
  EXPECT_LE(result.final_unique_bytes, result.final_total_bytes);
}

TEST(Driver, TimeSeriesRecordedWhenEnabled) {
  auto config = small_config(0.8);
  config.cache.record_time_series = true;
  const auto result = run_simulation(repo(), config);
  EXPECT_EQ(result.series.samples().size(), 150u);
  // Cumulative counters in the series are monotone.
  const auto& samples = result.series.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].hits, samples[i - 1].hits);
    EXPECT_GE(samples[i].merges, samples[i - 1].merges);
    EXPECT_GE(samples[i].inserts, samples[i - 1].inserts);
    EXPECT_GE(samples[i].deletes, samples[i - 1].deletes);
    EXPECT_GE(samples[i].cumulative_written, samples[i - 1].cumulative_written);
    EXPECT_GE(samples[i].cumulative_requested, samples[i - 1].cumulative_requested);
  }
}

TEST(Driver, AlphaZeroBehavesLikeLru) {
  const auto result = run_simulation(repo(), small_config(0.0));
  EXPECT_EQ(result.counters.merges, 0u);
  EXPECT_GT(result.counters.inserts, 0u);
}

TEST(Driver, AlphaOneBuildsSingleImage) {
  auto config = small_config(1.0);
  config.cache.capacity = repo().total_bytes() * 2;
  const auto result = run_simulation(repo(), config);
  EXPECT_EQ(result.final_image_count, 1u);
  EXPECT_DOUBLE_EQ(result.cache_efficiency, 1.0);
}

TEST(Driver, RepetitionsIncreaseHits) {
  auto config = small_config(0.6);
  config.workload.repetitions = 1;
  const auto once = run_simulation(repo(), config);
  config.workload.repetitions = 5;
  const auto five = run_simulation(repo(), config);
  EXPECT_GT(five.counters.hits, once.counters.hits);
}

}  // namespace
}  // namespace landlord::sim
