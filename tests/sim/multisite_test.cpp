#include "sim/multisite.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 800;
    auto result = pkg::generate_repository(params, 91);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

struct Workload {
  std::vector<spec::Specification> specs;
  std::vector<std::uint32_t> stream;
};

Workload make_workload(std::uint32_t jobs, std::uint32_t reps) {
  WorkloadConfig config;
  config.unique_jobs = jobs;
  config.repetitions = reps;
  config.max_initial_selection = 10;
  WorkloadGenerator generator(repo(), config, util::Rng(5));
  Workload w;
  w.specs = generator.unique_specifications();
  w.stream = generator.request_stream();
  return w;
}

MultiSiteConfig site_config(Routing routing, std::uint32_t sites = 4) {
  MultiSiteConfig config;
  config.sites = sites;
  config.routing = routing;
  config.cache.alpha = 0.8;
  config.cache.capacity = repo().total_bytes();
  return config;
}

TEST(MultiSite, EveryRequestLandsSomewhere) {
  const auto workload = make_workload(40, 3);
  const auto result = run_multisite(repo(), site_config(Routing::kRoundRobin),
                                    workload.specs, workload.stream, 1);
  ASSERT_EQ(result.per_site.size(), 4u);
  std::uint64_t total_requests = 0;
  for (const auto& counters : result.per_site) total_requests += counters.requests;
  EXPECT_EQ(total_requests, workload.stream.size());
}

TEST(MultiSite, RoundRobinBalancesLoad) {
  const auto workload = make_workload(40, 3);
  const auto result = run_multisite(repo(), site_config(Routing::kRoundRobin),
                                    workload.specs, workload.stream, 1);
  const auto expected = workload.stream.size() / 4;
  for (const auto& counters : result.per_site) {
    EXPECT_NEAR(static_cast<double>(counters.requests),
                static_cast<double>(expected), 1.0);
  }
}

TEST(MultiSite, AffinityRoutesIdenticalSpecsTogether) {
  // With affinity routing every repetition of a job goes to one site, so
  // system-wide hits match the single-site case and no image is built at
  // two sites.
  const auto workload = make_workload(40, 4);
  const auto affinity = run_multisite(repo(), site_config(Routing::kAffinity),
                                      workload.specs, workload.stream, 1);
  const auto round_robin =
      run_multisite(repo(), site_config(Routing::kRoundRobin), workload.specs,
                    workload.stream, 1);
  EXPECT_GT(affinity.total_hits, round_robin.total_hits);
  // Content-blind routing duplicates images across sites: worse global
  // cache efficiency.
  EXPECT_GT(affinity.global_cache_efficiency(),
            round_robin.global_cache_efficiency());
}

TEST(MultiSite, SingleSiteMatchesPlainCache) {
  const auto workload = make_workload(30, 3);
  auto config = site_config(Routing::kRoundRobin, 1);
  const auto multi = run_multisite(repo(), config, workload.specs,
                                   workload.stream, 1);

  core::Cache cache(repo(), config.cache);
  for (auto index : workload.stream) (void)cache.request(workload.specs[index]);

  ASSERT_EQ(multi.per_site.size(), 1u);
  EXPECT_EQ(multi.per_site[0].hits, cache.counters().hits);
  EXPECT_EQ(multi.per_site[0].merges, cache.counters().merges);
  EXPECT_EQ(multi.total_cached_bytes, cache.total_bytes());
  EXPECT_EQ(multi.global_unique_bytes, cache.unique_bytes());
}

TEST(MultiSite, GlobalUniqueNeverExceedsTotal) {
  const auto workload = make_workload(40, 3);
  for (auto routing : {Routing::kRoundRobin, Routing::kRandom, Routing::kAffinity}) {
    const auto result = run_multisite(repo(), site_config(routing),
                                      workload.specs, workload.stream, 2);
    EXPECT_LE(result.global_unique_bytes, result.total_cached_bytes)
        << to_string(routing);
  }
}

TEST(MultiSite, DeterministicInSeed) {
  const auto workload = make_workload(30, 3);
  const auto a = run_multisite(repo(), site_config(Routing::kRandom),
                               workload.specs, workload.stream, 7);
  const auto b = run_multisite(repo(), site_config(Routing::kRandom),
                               workload.specs, workload.stream, 7);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.total_cached_bytes, b.total_cached_bytes);
}

TEST(MultiSite, AffinityIsSeedIndependent) {
  // Affinity routing is a pure function of spec contents.
  const auto workload = make_workload(30, 3);
  const auto a = run_multisite(repo(), site_config(Routing::kAffinity),
                               workload.specs, workload.stream, 1);
  const auto b = run_multisite(repo(), site_config(Routing::kAffinity),
                               workload.specs, workload.stream, 999);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.total_written_bytes, b.total_written_bytes);
}

TEST(MultiSite, RoutingNames) {
  EXPECT_STREQ(to_string(Routing::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(Routing::kRandom), "random");
  EXPECT_STREQ(to_string(Routing::kAffinity), "affinity");
}

}  // namespace
}  // namespace landlord::sim
