#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 800;
    auto result = pkg::generate_repository(params, 61);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

SweepConfig small_sweep() {
  SweepConfig config;
  config.alphas = {0.2, 0.6, 0.95};
  config.replicates = 3;
  config.base.cache.capacity = repo().total_bytes() / 3;
  config.base.workload.unique_jobs = 30;
  config.base.workload.repetitions = 3;
  config.base.workload.max_initial_selection = 15;
  config.base.seed = 17;
  return config;
}

TEST(Sweep, OnePointPerAlpha) {
  const auto points = run_sweep(repo(), small_sweep());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].alpha, 0.2);
  EXPECT_DOUBLE_EQ(points[2].alpha, 0.95);
}

TEST(Sweep, DefaultAlphasMatchPaperGrid) {
  const auto alphas = SweepConfig::default_alphas();
  ASSERT_EQ(alphas.size(), 13u);  // 0.40 .. 1.00 step 0.05
  EXPECT_DOUBLE_EQ(alphas.front(), 0.40);
  EXPECT_DOUBLE_EQ(alphas.back(), 1.00);
  for (std::size_t i = 1; i < alphas.size(); ++i) {
    EXPECT_NEAR(alphas[i] - alphas[i - 1], 0.05, 1e-12);
  }
}

TEST(Sweep, SerialAndParallelAgreeExactly) {
  const auto serial = run_sweep(repo(), small_sweep(), nullptr);
  util::ThreadPool pool(4);
  const auto parallel = run_sweep(repo(), small_sweep(), &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].hits, parallel[i].hits);
    EXPECT_DOUBLE_EQ(serial[i].merges, parallel[i].merges);
    EXPECT_DOUBLE_EQ(serial[i].inserts, parallel[i].inserts);
    EXPECT_DOUBLE_EQ(serial[i].total_gb, parallel[i].total_gb);
    EXPECT_DOUBLE_EQ(serial[i].cache_efficiency, parallel[i].cache_efficiency);
  }
}

TEST(Sweep, RerunIsDeterministic) {
  const auto a = run_sweep(repo(), small_sweep());
  const auto b = run_sweep(repo(), small_sweep());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].written_tb, b[i].written_tb);
    EXPECT_DOUBLE_EQ(a[i].container_efficiency, b[i].container_efficiency);
  }
}

TEST(Sweep, OperationCountsConserveRequests) {
  // Median-of-sums won't exactly equal the request count, but each
  // replicate conserves it, so the medians must sum close to it.
  const auto points = run_sweep(repo(), small_sweep());
  const double requests = 30.0 * 3.0;
  for (const auto& point : points) {
    EXPECT_NEAR(point.hits + point.merges + point.inserts, requests,
                requests * 0.1);
  }
}

TEST(Sweep, HighAlphaMergesMoreThanLowAlpha) {
  const auto points = run_sweep(repo(), small_sweep());
  EXPECT_GT(points[2].merges, points[0].merges);
  EXPECT_LT(points[2].inserts, points[0].inserts);
}

TEST(Sweep, EfficiencyPercentagesInRange) {
  for (const auto& point : run_sweep(repo(), small_sweep())) {
    EXPECT_GE(point.cache_efficiency, 0.0);
    EXPECT_LE(point.cache_efficiency, 100.0 + 1e-9);
    EXPECT_GE(point.container_efficiency, 0.0);
    EXPECT_LE(point.container_efficiency, 100.0 + 1e-9);
  }
}

}  // namespace
}  // namespace landlord::sim
