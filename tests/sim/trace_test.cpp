#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pkg/synthetic.hpp"
#include "sim/driver.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 500;
    auto result = pkg::generate_repository(params, 71);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

Trace sample_trace() {
  WorkloadConfig config;
  config.unique_jobs = 12;
  config.repetitions = 3;
  config.max_initial_selection = 8;
  WorkloadGenerator generator(repo(), config, util::Rng(3));
  Trace trace;
  trace.specs = generator.unique_specifications();
  trace.stream = generator.request_stream();
  return trace;
}

TEST(Trace, RoundTripsExactly) {
  const auto original = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, original, repo());
  auto reloaded = read_trace(buffer, repo());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  ASSERT_EQ(reloaded.value().specs.size(), original.specs.size());
  for (std::size_t i = 0; i < original.specs.size(); ++i) {
    EXPECT_TRUE(reloaded.value().specs[i].packages() ==
                original.specs[i].packages());
  }
  EXPECT_EQ(reloaded.value().stream, original.stream);
}

TEST(Trace, ReplayedTraceGivesIdenticalSimulation) {
  const auto trace = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, trace, repo());
  auto reloaded = read_trace(buffer, repo());
  ASSERT_TRUE(reloaded.ok());

  auto run = [&](const Trace& t) {
    core::CacheConfig config;
    config.alpha = 0.8;
    config.capacity = repo().total_bytes() / 3;
    core::Cache cache(repo(), config);
    for (auto index : t.stream) (void)cache.request(t.specs[index]);
    return cache.counters();
  };
  const auto a = run(trace);
  const auto b = run(reloaded.value());
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.written_bytes, b.written_bytes);
}

TEST(Trace, RejectsMissingMagic) {
  std::istringstream in("job 0 x/1\n");
  auto result = read_trace(in, repo());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("magic"), std::string::npos);
}

TEST(Trace, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(read_trace(in, repo()).ok());
}

TEST(Trace, RejectsUnknownPackageKey) {
  std::istringstream in("landlord-trace v1\njob 0 ghost/9.9\n");
  auto result = read_trace(in, repo());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unknown package"), std::string::npos);
}

TEST(Trace, RejectsOutOfOrderJobIndices) {
  std::istringstream in("landlord-trace v1\njob 1 " +
                        repo()[pkg::package_id(0)].key() + "\n");
  EXPECT_FALSE(read_trace(in, repo()).ok());
}

TEST(Trace, RejectsRequestBeforeJob) {
  std::istringstream in("landlord-trace v1\nrequest 0\n");
  auto result = read_trace(in, repo());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("undeclared"), std::string::npos);
}

TEST(Trace, RejectsGarbageDirective) {
  std::istringstream in("landlord-trace v1\nfrobnicate\n");
  EXPECT_FALSE(read_trace(in, repo()).ok());
}

TEST(Trace, ToleratesCommentsAndBlankLines) {
  const auto& key = repo()[pkg::package_id(3)].key();
  std::istringstream in("landlord-trace v1\n# hello\n\njob 0 " + key +
                        "\n# again\nrequest 0\nrequest 0\n");
  auto result = read_trace(in, repo());
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().specs.size(), 1u);
  EXPECT_EQ(result.value().stream.size(), 2u);
}

TEST(Trace, EmptyJobAllowed) {
  std::istringstream in("landlord-trace v1\njob 0\nrequest 0\n");
  auto result = read_trace(in, repo());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().specs[0].empty());
}

TEST(Trace, FileRoundTrip) {
  const auto trace = sample_trace();
  const std::string path = testing::TempDir() + "/landlord_trace_test.txt";
  ASSERT_TRUE(save_trace(path, trace, repo()));
  auto reloaded = load_trace(path, repo());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  EXPECT_EQ(reloaded.value().stream, trace.stream);
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_FALSE(load_trace("/nonexistent/trace.txt", repo()).ok());
}

}  // namespace
}  // namespace landlord::sim
