#include "sim/workers.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {
namespace {

using pkg::package_id;

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 800;
    auto result = pkg::generate_repository(params, 81);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

core::Image make_image(std::uint64_t id, util::Bytes bytes,
                       std::uint32_t version = 0) {
  core::Image image;
  image.id = core::ImageId{id};
  image.bytes = bytes;
  image.version = version;
  return image;
}

TEST(WorkerPool, FirstDispatchTransfers) {
  WorkerPool pool({.workers = 2}, util::Rng(1));
  EXPECT_EQ(pool.dispatch(make_image(1, 100)), util::Bytes{100});
  EXPECT_EQ(pool.transferred_bytes(), util::Bytes{100});
  EXPECT_EQ(pool.transfers(), 1u);
}

TEST(WorkerPool, SameWorkerSameVersionIsLocalHit) {
  WorkerPoolConfig config;
  config.workers = 1;
  WorkerPool pool(config, util::Rng(1));
  (void)pool.dispatch(make_image(1, 100));
  EXPECT_EQ(pool.dispatch(make_image(1, 100)), util::Bytes{0});
  EXPECT_EQ(pool.local_hits(), 1u);
  EXPECT_EQ(pool.transferred_bytes(), util::Bytes{100});
}

TEST(WorkerPool, RoundRobinSpreadsCopies) {
  WorkerPoolConfig config;
  config.workers = 2;
  config.scheduling = Scheduling::kRoundRobin;
  WorkerPool pool(config, util::Rng(1));
  (void)pool.dispatch(make_image(1, 100));  // worker 0
  (void)pool.dispatch(make_image(1, 100));  // worker 1: must transfer again
  EXPECT_EQ(pool.transfers(), 2u);
  EXPECT_EQ(pool.local_hits(), 0u);
  (void)pool.dispatch(make_image(1, 100));  // worker 0 again: local
  EXPECT_EQ(pool.local_hits(), 1u);
}

TEST(WorkerPool, StaleVersionRefetches) {
  WorkerPoolConfig config;
  config.workers = 1;
  WorkerPool pool(config, util::Rng(1));
  (void)pool.dispatch(make_image(1, 100, 0));
  EXPECT_EQ(pool.dispatch(make_image(1, 120, 1)), util::Bytes{120});
  EXPECT_EQ(pool.stale_refetches(), 1u);
  EXPECT_EQ(pool.transferred_bytes(), util::Bytes{220});
}

TEST(WorkerPool, ScratchEvictionLru) {
  WorkerPoolConfig config;
  config.workers = 1;
  config.scratch_per_worker = 150;
  WorkerPool pool(config, util::Rng(1));
  (void)pool.dispatch(make_image(1, 100));
  (void)pool.dispatch(make_image(2, 100));  // evicts image 1 locally
  EXPECT_EQ(pool.dispatch(make_image(1, 100)), util::Bytes{100});  // refetch
  EXPECT_EQ(pool.transfers(), 3u);
}

TEST(WorkerPool, RandomSchedulingStillAccounts) {
  WorkerPoolConfig config;
  config.workers = 4;
  config.scheduling = Scheduling::kRandom;
  WorkerPool pool(config, util::Rng(7));
  util::Bytes total = 0;
  for (int i = 0; i < 20; ++i) total += pool.dispatch(make_image(1, 50));
  EXPECT_EQ(total, pool.transferred_bytes());
  EXPECT_EQ(pool.transfers() + pool.local_hits(), 20u);
}

TEST(RunWithWorkers, EndToEndAccounting) {
  WorkloadConfig workload;
  workload.unique_jobs = 40;
  workload.repetitions = 3;
  workload.max_initial_selection = 10;
  WorkloadGenerator generator(repo(), workload, util::Rng(9));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = repo().total_bytes();
  WorkerPoolConfig pool_config;
  pool_config.workers = 4;
  pool_config.scratch_per_worker = repo().total_bytes();

  const auto result = run_with_workers(repo(), cache_config, pool_config, specs,
                                       stream, 11);
  EXPECT_EQ(result.head_counters.requests, stream.size());
  EXPECT_GT(result.transferred_bytes, util::Bytes{0});
  EXPECT_EQ(result.transfers + result.local_hits,
            result.head_counters.requests);
  EXPECT_GT(result.requested_bytes, util::Bytes{0});
}

TEST(RunWithWorkers, HighAlphaTransfersMoreBytesPerJob) {
  // Fat merged images get rewritten constantly, so worker copies go
  // stale and transfers balloon — the downstream cost of high alpha.
  WorkloadConfig workload;
  workload.unique_jobs = 60;
  workload.repetitions = 4;
  workload.max_initial_selection = 15;
  WorkloadGenerator generator(repo(), workload, util::Rng(13));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  auto transfer_at = [&](double alpha) {
    core::CacheConfig cache_config;
    cache_config.alpha = alpha;
    cache_config.capacity = repo().total_bytes();
    WorkerPoolConfig pool_config;
    pool_config.workers = 4;
    pool_config.scratch_per_worker = repo().total_bytes();
    return run_with_workers(repo(), cache_config, pool_config, specs, stream, 17)
        .transferred_bytes;
  };
  EXPECT_GT(transfer_at(0.95), transfer_at(0.0));
}

TEST(RunWithWorkers, DeterministicInSeed) {
  WorkloadConfig workload;
  workload.unique_jobs = 30;
  workload.repetitions = 2;
  WorkloadGenerator generator(repo(), workload, util::Rng(19));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = repo().total_bytes();
  WorkerPoolConfig pool_config;
  pool_config.scheduling = Scheduling::kRandom;

  const auto a = run_with_workers(repo(), cache_config, pool_config, specs,
                                  stream, 23);
  const auto b = run_with_workers(repo(), cache_config, pool_config, specs,
                                  stream, 23);
  EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
  EXPECT_EQ(a.local_hits, b.local_hits);
}

}  // namespace
}  // namespace landlord::sim
