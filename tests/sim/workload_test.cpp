#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "pkg/synthetic.hpp"

namespace landlord::sim {
namespace {

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 800;
    auto result = pkg::generate_repository(params, 41);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

TEST(Workload, GeneratesRequestedUniqueCount) {
  WorkloadConfig config;
  config.unique_jobs = 25;
  WorkloadGenerator generator(repo(), config, util::Rng(1));
  EXPECT_EQ(generator.unique_specifications().size(), 25u);
}

TEST(Workload, DeterministicInRng) {
  WorkloadConfig config;
  config.unique_jobs = 10;
  WorkloadGenerator g1(repo(), config, util::Rng(7));
  WorkloadGenerator g2(repo(), config, util::Rng(7));
  const auto s1 = g1.unique_specifications();
  const auto s2 = g2.unique_specifications();
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_TRUE(s1[i].packages() == s2[i].packages());
  }
}

TEST(Workload, DependencySchemeSpecsAreClosed) {
  WorkloadConfig config;
  config.unique_jobs = 15;
  config.scheme = ImageScheme::kDependencyClosure;
  WorkloadGenerator generator(repo(), config, util::Rng(3));
  for (const auto& spec : generator.unique_specifications()) {
    // Closure property: every member's deps are members.
    bool closed = true;
    spec.packages().for_each([&](pkg::PackageId id) {
      for (pkg::PackageId dep : repo()[id].deps) {
        closed &= spec.packages().contains(dep);
      }
    });
    EXPECT_TRUE(closed);
    EXPECT_FALSE(spec.empty());
  }
}

TEST(Workload, InitialSelectionBoundRespected) {
  // A spec's closure can be large, but with max_initial_selection=1 it is
  // exactly one package's closure.
  WorkloadConfig config;
  config.unique_jobs = 10;
  config.max_initial_selection = 1;
  WorkloadGenerator generator(repo(), config, util::Rng(5));
  for (const auto& spec : generator.unique_specifications()) {
    // Must equal the closure of some single package: find the member
    // whose closure covers the whole spec.
    bool found = false;
    spec.packages().for_each([&](pkg::PackageId id) {
      if (repo().closure(id).count() == spec.size()) found = true;
    });
    EXPECT_TRUE(found);
  }
}

TEST(Workload, RandomSchemeMatchesClosureSizeButNotStructure) {
  WorkloadConfig dep_config;
  dep_config.unique_jobs = 20;
  dep_config.scheme = ImageScheme::kDependencyClosure;
  WorkloadConfig rnd_config = dep_config;
  rnd_config.scheme = ImageScheme::kUniformRandom;

  WorkloadGenerator dep_gen(repo(), dep_config, util::Rng(9));
  WorkloadGenerator rnd_gen(repo(), rnd_config, util::Rng(9));
  const auto dep_specs = dep_gen.unique_specifications();
  const auto rnd_specs = rnd_gen.unique_specifications();
  ASSERT_EQ(dep_specs.size(), rnd_specs.size());

  // Size-matched (Fig. 7's control): each random spec copies the package
  // count of a dependency-closure draw, so the size *distributions* agree
  // (the draws differ per generator because the random scheme consumes
  // extra randomness, so we compare means, not elements).
  auto mean_size = [](const std::vector<spec::Specification>& specs) {
    double total = 0.0;
    for (const auto& s : specs) total += static_cast<double>(s.size());
    return total / static_cast<double>(specs.size());
  };
  EXPECT_NEAR(mean_size(rnd_specs) / mean_size(dep_specs), 1.0, 0.5);

  // But random specs are (almost surely) not dependency-closed.
  int closed_count = 0;
  for (const auto& spec : rnd_specs) {
    bool closed = true;
    spec.packages().for_each([&](pkg::PackageId id) {
      for (pkg::PackageId dep : repo()[id].deps) {
        closed &= spec.packages().contains(dep);
      }
    });
    closed_count += closed ? 1 : 0;
  }
  EXPECT_LT(closed_count, 3);
}

TEST(Workload, StreamContainsEachJobExactlyRepetitionTimes) {
  WorkloadConfig config;
  config.unique_jobs = 12;
  config.repetitions = 4;
  WorkloadGenerator generator(repo(), config, util::Rng(11));
  const auto stream = generator.request_stream();
  EXPECT_EQ(stream.size(), 48u);
  std::map<std::uint32_t, int> counts;
  for (auto index : stream) ++counts[index];
  EXPECT_EQ(counts.size(), 12u);
  for (const auto& [index, count] : counts) {
    EXPECT_LT(index, 12u);
    EXPECT_EQ(count, 4);
  }
}

TEST(Workload, ShuffledStreamInterleaves) {
  WorkloadConfig config;
  config.unique_jobs = 50;
  config.repetitions = 3;
  config.shuffle_stream = true;
  WorkloadGenerator generator(repo(), config, util::Rng(13));
  const auto stream = generator.request_stream();
  // Unshuffled layout would be 0..49,0..49,0..49; shuffled must differ.
  bool in_order = true;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    in_order &= (stream[i] == i % 50);
  }
  EXPECT_FALSE(in_order);
}

TEST(Workload, UnshuffledStreamIsRoundRobin) {
  WorkloadConfig config;
  config.unique_jobs = 5;
  config.repetitions = 2;
  config.shuffle_stream = false;
  WorkloadGenerator generator(repo(), config, util::Rng(15));
  const auto stream = generator.request_stream();
  const std::vector<std::uint32_t> expected = {0, 1, 2, 3, 4, 0, 1, 2, 3, 4};
  EXPECT_EQ(stream, expected);
}

TEST(Workload, SchemeToString) {
  EXPECT_STREQ(to_string(ImageScheme::kDependencyClosure), "deps");
  EXPECT_STREQ(to_string(ImageScheme::kUniformRandom), "random");
}

}  // namespace
}  // namespace landlord::sim
