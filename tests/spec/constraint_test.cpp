#include "spec/constraint.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace landlord::spec {
namespace {

// ---- version_compare ----

struct VersionCase {
  const char* a;
  const char* b;
  int expected;  // sign
};

class VersionCompareTest : public testing::TestWithParam<VersionCase> {};

TEST_P(VersionCompareTest, Compares) {
  const auto& p = GetParam();
  const int result = version_compare(p.a, p.b);
  if (p.expected < 0) {
    EXPECT_LT(result, 0) << p.a << " vs " << p.b;
  } else if (p.expected == 0) {
    EXPECT_EQ(result, 0) << p.a << " vs " << p.b;
  } else {
    EXPECT_GT(result, 0) << p.a << " vs " << p.b;
  }
  // Antisymmetry.
  const int reversed = version_compare(p.b, p.a);
  EXPECT_EQ(result < 0, reversed > 0);
  EXPECT_EQ(result == 0, reversed == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VersionCompareTest,
    testing::Values(
        VersionCase{"1.0", "1.0", 0},
        VersionCase{"1.0", "2.0", -1},
        VersionCase{"1.9", "1.10", -1},       // numeric, not lexical
        VersionCase{"1.2", "1.2.1", -1},      // prefix is smaller
        VersionCase{"1.02", "1.2", 0},        // leading zeros ignored
        VersionCase{"6.18.04", "6.18.4", 0},
        VersionCase{"6.18.04", "6.19.00", -1},
        VersionCase{"1.0-rc", "1.0-1", -1},   // alpha sorts before numeric
        VersionCase{"2.0a", "2.0b", -1},
        VersionCase{"v1.2", "v1.3", -1},
        VersionCase{"10", "9", 1},
        VersionCase{"1_5", "1.5", 0},         // separators equivalent
        VersionCase{"", "", 0},
        VersionCase{"", "1", -1}));

// ---- parse_constraint ----

TEST(ParseConstraint, ParsesAllOperators) {
  const struct {
    const char* text;
    ConstraintOp op;
  } cases[] = {
      {"pkg==1.0", ConstraintOp::kEq}, {"pkg!=1.0", ConstraintOp::kNe},
      {"pkg<1.0", ConstraintOp::kLt},  {"pkg<=1.0", ConstraintOp::kLe},
      {"pkg>1.0", ConstraintOp::kGt},  {"pkg>=1.0", ConstraintOp::kGe},
  };
  for (const auto& c : cases) {
    auto result = parse_constraint(c.text);
    ASSERT_TRUE(result.ok()) << c.text;
    EXPECT_EQ(result.value().package, "pkg");
    EXPECT_EQ(result.value().op, c.op);
    EXPECT_EQ(result.value().version, "1.0");
  }
}

TEST(ParseConstraint, ToleratesWhitespace) {
  auto result = parse_constraint("  root >= 6.18.04  ");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().package, "root");
  EXPECT_EQ(result.value().op, ConstraintOp::kGe);
  EXPECT_EQ(result.value().version, "6.18.04");
}

TEST(ParseConstraint, BareNameMeansAnyVersion) {
  auto result = parse_constraint("geant4");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().package, "geant4");
  EXPECT_EQ(result.value().op, ConstraintOp::kGe);
  EXPECT_TRUE(result.value().version.empty());
}

TEST(ParseConstraint, RejectsMalformed) {
  EXPECT_FALSE(parse_constraint("").ok());
  EXPECT_FALSE(parse_constraint("==1.0").ok());
  EXPECT_FALSE(parse_constraint("pkg==").ok());
  EXPECT_FALSE(parse_constraint("two words").ok());
}

TEST(ToString, OperatorNames) {
  EXPECT_STREQ(to_string(ConstraintOp::kEq), "==");
  EXPECT_STREQ(to_string(ConstraintOp::kNe), "!=");
  EXPECT_STREQ(to_string(ConstraintOp::kLt), "<");
  EXPECT_STREQ(to_string(ConstraintOp::kLe), "<=");
  EXPECT_STREQ(to_string(ConstraintOp::kGt), ">");
  EXPECT_STREQ(to_string(ConstraintOp::kGe), ">=");
}

// ---- ConflictChecker ----

VersionConstraint vc(const char* text) {
  auto result = parse_constraint(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

TEST(ConflictChecker, EmptyConstraintsAlwaysCompatible) {
  EXPECT_TRUE(ConflictChecker::compatible({}, {}));
}

TEST(ConflictChecker, DifferentPackagesNeverConflict) {
  const std::vector<VersionConstraint> a = {vc("python==3.8")};
  const std::vector<VersionConstraint> b = {vc("root==6.18")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, EqualPinsAgree) {
  const std::vector<VersionConstraint> a = {vc("python==3.8")};
  const std::vector<VersionConstraint> b = {vc("python==3.8")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, ConflictingPins) {
  const std::vector<VersionConstraint> a = {vc("python==3.8")};
  const std::vector<VersionConstraint> b = {vc("python==3.9")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, PinInsideRangeOk) {
  const std::vector<VersionConstraint> a = {vc("python==3.8")};
  const std::vector<VersionConstraint> b = {vc("python>=3.0"), vc("python<4.0")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, PinOutsideRangeConflicts) {
  const std::vector<VersionConstraint> a = {vc("python==2.7")};
  const std::vector<VersionConstraint> b = {vc("python>=3.0")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, PinExcludedByNe) {
  const std::vector<VersionConstraint> a = {vc("python==3.8")};
  const std::vector<VersionConstraint> b = {vc("python!=3.8")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, DisjointRangesConflict) {
  const std::vector<VersionConstraint> a = {vc("gcc<8")};
  const std::vector<VersionConstraint> b = {vc("gcc>9")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, OverlappingRangesOk) {
  const std::vector<VersionConstraint> a = {vc("gcc>=8"), vc("gcc<11")};
  const std::vector<VersionConstraint> b = {vc("gcc>=10")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, TouchingBoundsInclusiveOk) {
  const std::vector<VersionConstraint> a = {vc("x>=2.0")};
  const std::vector<VersionConstraint> b = {vc("x<=2.0")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));  // exactly 2.0 works
}

TEST(ConflictChecker, TouchingBoundsStrictConflicts) {
  const std::vector<VersionConstraint> a = {vc("x>2.0")};
  const std::vector<VersionConstraint> b = {vc("x<=2.0")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, SinglePointRangeExcludedByNe) {
  const std::vector<VersionConstraint> a = {vc("x>=2.0"), vc("x<=2.0")};
  const std::vector<VersionConstraint> b = {vc("x!=2.0")};
  EXPECT_FALSE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, NeAloneIsSatisfiable) {
  const std::vector<VersionConstraint> a = {vc("x!=1.0"), vc("x!=2.0")};
  EXPECT_TRUE(ConflictChecker::satisfiable(a));
}

TEST(ConflictChecker, BareNameCompatibleWithEverything) {
  const std::vector<VersionConstraint> a = {vc("x")};
  const std::vector<VersionConstraint> b = {vc("x==0.1")};
  EXPECT_TRUE(ConflictChecker::compatible(a, b));
}

TEST(ConflictChecker, SatisfiableSelfCheck) {
  EXPECT_TRUE(ConflictChecker::satisfiable({}));
  const std::vector<VersionConstraint> contradictory = {vc("x==1"), vc("x==2")};
  EXPECT_FALSE(ConflictChecker::satisfiable(contradictory));
}

TEST(ConflictChecker, CompatibilityIsSymmetric) {
  const std::vector<VersionConstraint> a = {vc("python==3.8"), vc("gcc>=9")};
  const std::vector<VersionConstraint> b = {vc("python>=3.0"), vc("gcc<12")};
  EXPECT_EQ(ConflictChecker::compatible(a, b), ConflictChecker::compatible(b, a));
  const std::vector<VersionConstraint> c = {vc("python==2.7")};
  EXPECT_EQ(ConflictChecker::compatible(a, c), ConflictChecker::compatible(c, a));
}

// ---- merge_constraints ----

TEST(MergeConstraints, AppendsOnlyAbsentConstraints) {
  std::vector<VersionConstraint> into = {vc("python==3.8"), vc("gcc>=9")};
  const std::vector<VersionConstraint> add = {vc("python==3.8"), vc("boost<2")};
  merge_constraints(into, add);
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into[0], vc("python==3.8"));
  EXPECT_EQ(into[1], vc("gcc>=9"));
  EXPECT_EQ(into[2], vc("boost<2"));
}

TEST(MergeConstraints, IsIdempotent) {
  std::vector<VersionConstraint> into = {vc("python==3.8")};
  const std::vector<VersionConstraint> add = {vc("python==3.8"), vc("gcc>=9")};
  merge_constraints(into, add);
  const auto once = into;
  for (int i = 0; i < 10; ++i) merge_constraints(into, add);
  EXPECT_EQ(into, once);
}

TEST(MergeConstraints, DistinguishesOpAndVersion) {
  // Same package, different op or version: genuinely different
  // constraints, all kept.
  std::vector<VersionConstraint> into = {vc("python>=3.8")};
  const std::vector<VersionConstraint> add = {vc("python<=3.8"), vc("python>=3.9")};
  merge_constraints(into, add);
  EXPECT_EQ(into.size(), 3u);
}

TEST(MergeConstraints, EmptyAddIsNoop) {
  std::vector<VersionConstraint> into = {vc("python==3.8")};
  merge_constraints(into, {});
  ASSERT_EQ(into.size(), 1u);
}

}  // namespace
}  // namespace landlord::spec
