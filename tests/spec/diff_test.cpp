#include "spec/diff.hpp"

#include <gtest/gtest.h>

namespace landlord::spec {
namespace {

using pkg::package_id;

pkg::Repository flat_repo(std::uint32_t n, util::Bytes each = 10) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", each, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

PackageSet make_set(std::size_t universe, std::initializer_list<std::uint32_t> ids) {
  PackageSet s(universe);
  for (auto i : ids) s.insert(package_id(i));
  return s;
}

TEST(Diff, ExactMatch) {
  const auto repo = flat_repo(20);
  const auto set = make_set(repo.size(), {1, 2, 3});
  const auto d = diff(repo, set, set);
  EXPECT_TRUE(d.satisfied());
  EXPECT_TRUE(d.missing.empty());
  EXPECT_TRUE(d.extra.empty());
  EXPECT_EQ(d.shared.size(), 3u);
  EXPECT_DOUBLE_EQ(d.utilization(), 1.0);
  EXPECT_EQ(d.shared_bytes, util::Bytes{30});
}

TEST(Diff, SupersetImage) {
  const auto repo = flat_repo(20);
  const auto requested = make_set(repo.size(), {1, 2});
  const auto image = make_set(repo.size(), {1, 2, 3, 4});
  const auto d = diff(repo, requested, image);
  EXPECT_TRUE(d.satisfied());
  EXPECT_EQ(d.extra.size(), 2u);
  EXPECT_EQ(d.extra_bytes, util::Bytes{20});
  EXPECT_DOUBLE_EQ(d.utilization(), 0.5);
}

TEST(Diff, MissingPackages) {
  const auto repo = flat_repo(20);
  const auto requested = make_set(repo.size(), {1, 2, 5});
  const auto image = make_set(repo.size(), {1, 2, 3});
  const auto d = diff(repo, requested, image);
  EXPECT_FALSE(d.satisfied());
  EXPECT_EQ(d.missing.size(), 1u);
  EXPECT_TRUE(d.missing.contains(package_id(5)));
  EXPECT_EQ(d.shared.size(), 2u);
  EXPECT_EQ(d.extra.size(), 1u);
}

TEST(Diff, PartitionsAreDisjointAndCover) {
  const auto repo = flat_repo(50);
  const auto requested = make_set(repo.size(), {1, 2, 3, 10, 11});
  const auto image = make_set(repo.size(), {2, 3, 20, 21});
  const auto d = diff(repo, requested, image);
  EXPECT_EQ(d.missing.intersection_size(d.shared), 0u);
  EXPECT_EQ(d.extra.intersection_size(d.shared), 0u);
  EXPECT_EQ(d.missing.intersection_size(d.extra), 0u);
  EXPECT_EQ(d.missing.size() + d.shared.size(), requested.size());
  EXPECT_EQ(d.extra.size() + d.shared.size(), image.size());
}

TEST(Diff, EmptyBothSides) {
  const auto repo = flat_repo(10);
  const auto d = diff(repo, PackageSet(repo.size()), PackageSet(repo.size()));
  EXPECT_TRUE(d.satisfied());
  EXPECT_DOUBLE_EQ(d.utilization(), 1.0);
}

TEST(DescribeDiff, ExactMatchText) {
  const auto repo = flat_repo(20);
  const auto set = make_set(repo.size(), {1});
  const auto text = describe_diff(repo, diff(repo, set, set));
  EXPECT_EQ(text, "satisfied exactly");
}

TEST(DescribeDiff, BloatText) {
  const auto repo = flat_repo(20);
  const auto requested = make_set(repo.size(), {1});
  const auto image = make_set(repo.size(), {1, 2});
  const auto text = describe_diff(repo, diff(repo, requested, image));
  EXPECT_NE(text.find("unrequested"), std::string::npos);
  EXPECT_NE(text.find("p2/1"), std::string::npos);
  EXPECT_NE(text.find("50% utilization"), std::string::npos);
}

TEST(DescribeDiff, MissingText) {
  const auto repo = flat_repo(20);
  const auto requested = make_set(repo.size(), {1, 2});
  const auto image = make_set(repo.size(), {1});
  const auto text = describe_diff(repo, diff(repo, requested, image));
  EXPECT_NE(text.find("missing 1 package"), std::string::npos);
  EXPECT_NE(text.find("p2/1"), std::string::npos);
}

TEST(DescribeDiff, TruncatesLongLists) {
  const auto repo = flat_repo(30);
  PackageSet requested(repo.size());
  for (std::uint32_t i = 0; i < 10; ++i) requested.insert(package_id(i));
  const auto text =
      describe_diff(repo, diff(repo, requested, PackageSet(repo.size())), 3);
  EXPECT_NE(text.find("(7 more)"), std::string::npos);
}

}  // namespace
}  // namespace landlord::spec
