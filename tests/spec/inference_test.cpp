#include "spec/inference.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace landlord::spec {
namespace {

std::vector<Requirement> scan_python(const char* text) {
  std::istringstream in(text);
  return scan_python_imports(in);
}

std::vector<Requirement> scan_modules(const char* text) {
  std::istringstream in(text);
  return scan_module_loads(in);
}

std::vector<Requirement> scan_log(const char* text) {
  std::istringstream in(text);
  return scan_job_log(in);
}

// ---- Python import scanning ----

TEST(PythonImports, PlainImport) {
  const auto reqs = scan_python("import numpy\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], (Requirement{"numpy", ""}));
}

TEST(PythonImports, MultipleModulesOneLine) {
  const auto reqs = scan_python("import os, numpy, ROOT\n");
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[1].project, "numpy");
  EXPECT_EQ(reqs[2].project, "ROOT");
}

TEST(PythonImports, DottedPathYieldsTopLevel) {
  const auto reqs = scan_python("import scipy.optimize\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "scipy");
}

TEST(PythonImports, ImportAsAlias) {
  const auto reqs = scan_python("import numpy as np\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "numpy");
}

TEST(PythonImports, FromImport) {
  const auto reqs = scan_python("from ROOT import TFile\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "ROOT");
}

TEST(PythonImports, FromDottedImport) {
  const auto reqs = scan_python("from scipy.stats import norm\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "scipy");
}

TEST(PythonImports, RelativeImportIgnored) {
  EXPECT_TRUE(scan_python("from .local import thing\n").empty());
}

TEST(PythonImports, CommentsIgnored) {
  EXPECT_TRUE(scan_python("# import fake\n").empty());
  const auto reqs = scan_python("import real  # import fake\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "real");
}

TEST(PythonImports, DeduplicatesRepeats) {
  const auto reqs = scan_python("import numpy\nimport numpy\n");
  EXPECT_EQ(reqs.size(), 1u);
}

TEST(PythonImports, IndentedImportsCount) {
  const auto reqs = scan_python("    import lazy_module\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "lazy_module");
}

TEST(PythonImports, NonImportLinesIgnored) {
  EXPECT_TRUE(scan_python("x = 1\nprint('import nothing')\n").empty());
}

// ---- module load scanning ----

TEST(ModuleLoads, BasicLoad) {
  const auto reqs = scan_modules("module load root\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], (Requirement{"root", ""}));
}

TEST(ModuleLoads, NameSlashVersion) {
  const auto reqs = scan_modules("module load root/6.18.04\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], (Requirement{"root", "6.18.04"}));
}

TEST(ModuleLoads, MultipleModules) {
  const auto reqs = scan_modules("module load root/6.18 geant4 python/3.8\n");
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[1].project, "geant4");
  EXPECT_EQ(reqs[2].version, "3.8");
}

TEST(ModuleLoads, AddAliasAndMlAlias) {
  EXPECT_EQ(scan_modules("module add boost\n").size(), 1u);
  EXPECT_EQ(scan_modules("ml load fftw\n").size(), 1u);
}

TEST(ModuleLoads, SkipsFlags) {
  const auto reqs = scan_modules("module load --silent root\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].project, "root");
}

TEST(ModuleLoads, IgnoresOtherModuleCommands) {
  EXPECT_TRUE(scan_modules("module list\nmodule purge\n").empty());
}

TEST(ModuleLoads, IgnoresComments) {
  EXPECT_TRUE(scan_modules("# module load fake\n").empty());
}

// ---- job log scanning ----

TEST(JobLog, ExtractsCvmfsPaths) {
  const auto reqs = scan_log(
      "12:00:01 open /cvmfs/sft.cern.ch/ROOT/6.18.04/lib/libCore.so OK\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], (Requirement{"ROOT", "6.18.04"}));
}

TEST(JobLog, MultiplePathsPerLine) {
  const auto reqs = scan_log(
      "ld: /cvmfs/repo/a/1/x.so /cvmfs/repo/b/2/y.so\n");
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].project, "a");
  EXPECT_EQ(reqs[1].version, "2");
}

TEST(JobLog, DeduplicatesAccesses) {
  const auto reqs = scan_log(
      "/cvmfs/r/p/1/a\n/cvmfs/r/p/1/b\n/cvmfs/r/p/1/c\n");
  EXPECT_EQ(reqs.size(), 1u);
}

TEST(JobLog, DifferentVersionsAreDistinct) {
  const auto reqs = scan_log("/cvmfs/r/p/1/a\n/cvmfs/r/p/2/a\n");
  EXPECT_EQ(reqs.size(), 2u);
}

TEST(JobLog, IgnoresLinesWithoutCvmfs) {
  EXPECT_TRUE(scan_log("opened /usr/lib/libc.so\n").empty());
}

TEST(JobLog, HandlesQuotedPaths) {
  const auto reqs = scan_log("exec(\"/cvmfs/r/tool/3.1/bin/run\")\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], (Requirement{"tool", "3.1"}));
}

// ---- resolver + end-to-end inference ----

pkg::Repository versioned_repo() {
  pkg::RepositoryBuilder b;
  b.add({"base", "1.0", 100, pkg::PackageTier::kCore, {}});
  b.add({"root", "6.18.04", 500, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"root", "6.20.00", 520, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"numpy", "1.19", 50, pkg::PackageTier::kLibrary, {"base/1.0"}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(PackageResolver, ExactVersionMatch) {
  const auto repo = versioned_repo();
  const PackageResolver resolver(repo);
  const auto id = resolver.resolve({"root", "6.18.04"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(repo[*id].version, "6.18.04");
}

TEST(PackageResolver, BareNamePicksNewestVersion) {
  const auto repo = versioned_repo();
  const PackageResolver resolver(repo);
  const auto id = resolver.resolve({"root", ""});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(repo[*id].version, "6.20.00");
}

TEST(PackageResolver, UnknownPackageReturnsNullopt) {
  const auto repo = versioned_repo();
  const PackageResolver resolver(repo);
  EXPECT_FALSE(resolver.resolve({"ghost", ""}).has_value());
  EXPECT_FALSE(resolver.resolve({"root", "9.99"}).has_value());
}

TEST(PackageResolver, ResolveAllReportsUnresolved) {
  const auto repo = versioned_repo();
  const PackageResolver resolver(repo);
  const std::vector<Requirement> reqs = {
      {"root", ""}, {"ghost", ""}, {"numpy", "1.19"}};
  std::vector<std::string> unresolved;
  const auto ids = resolver.resolve_all(reqs, &unresolved);
  EXPECT_EQ(ids.size(), 2u);
  ASSERT_EQ(unresolved.size(), 1u);
  EXPECT_EQ(unresolved[0], "ghost");
}

TEST(InferSpecification, EndToEndWithClosure) {
  const auto repo = versioned_repo();
  const std::vector<Requirement> reqs = {{"root", "6.18.04"}};
  std::vector<std::string> unresolved;
  const auto spec = infer_specification(repo, reqs, "python-imports", &unresolved);
  EXPECT_TRUE(unresolved.empty());
  EXPECT_EQ(spec.size(), 2u);  // root + base
  EXPECT_EQ(spec.provenance(), "python-imports");
}

TEST(InferSpecification, SkipsUnresolvableRequirements) {
  const auto repo = versioned_repo();
  const std::vector<Requirement> reqs = {{"ghost", ""}, {"numpy", ""}};
  std::vector<std::string> unresolved;
  const auto spec = infer_specification(repo, reqs, "", &unresolved);
  EXPECT_EQ(spec.size(), 2u);  // numpy + base
  EXPECT_EQ(unresolved.size(), 1u);
}

}  // namespace
}  // namespace landlord::spec
