#include "spec/jaccard.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.hpp"

namespace landlord::spec {
namespace {

using pkg::package_id;

PackageSet make_set(std::size_t universe, std::initializer_list<std::uint32_t> ids) {
  PackageSet s(universe);
  for (auto i : ids) s.insert(package_id(i));
  return s;
}

TEST(Jaccard, IdenticalSetsDistanceZero) {
  const auto a = make_set(50, {1, 2, 3});
  EXPECT_DOUBLE_EQ(jaccard_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsDistanceOne) {
  const auto a = make_set(50, {1, 2});
  const auto b = make_set(50, {3, 4});
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 1.0);
}

TEST(Jaccard, KnownOverlap) {
  // |A∩B| = 2, |A∪B| = 4 -> similarity 0.5.
  const auto a = make_set(50, {1, 2, 3});
  const auto b = make_set(50, {2, 3, 4});
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 0.5);
}

TEST(Jaccard, OneElementDifference) {
  // The paper's motivating case: specs differing by one element are close.
  PackageSet a(200), b(200);
  for (std::uint32_t i = 0; i < 100; ++i) {
    a.insert(package_id(i));
    b.insert(package_id(i));
  }
  b.insert(package_id(150));
  EXPECT_NEAR(jaccard_distance(a, b), 1.0 / 101.0, 1e-12);
}

TEST(Jaccard, BothEmptyConventions) {
  const PackageSet a(10), b(10);
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 0.0);
}

TEST(Jaccard, EmptyVsNonEmptyIsMaximallyDistant) {
  const PackageSet empty(10);
  const auto b = make_set(10, {1});
  EXPECT_DOUBLE_EQ(jaccard_distance(empty, b), 1.0);
}

TEST(Jaccard, Symmetric) {
  const auto a = make_set(100, {1, 5, 9, 13});
  const auto b = make_set(100, {5, 9, 77});
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), jaccard_distance(b, a));
}

TEST(Jaccard, SubsetDistanceIsSizeRatio) {
  // A ⊂ B -> d = 1 - |A|/|B|.
  PackageSet a(100), b(100);
  for (std::uint32_t i = 0; i < 25; ++i) a.insert(package_id(i));
  for (std::uint32_t i = 0; i < 100; ++i) b.insert(package_id(i));
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 0.75);
}

// Property: metric axioms (range, identity, symmetry, triangle
// inequality — Jaccard distance is a true metric).
class JaccardPropertyTest
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(JaccardPropertyTest, MetricAxiomsHold) {
  const auto [seed, density] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  constexpr std::size_t kUniverse = 300;
  auto random_set = [&]() {
    PackageSet s(kUniverse);
    for (std::uint32_t i = 0; i < kUniverse; ++i) {
      if (rng.chance(density)) s.insert(package_id(i));
    }
    return s;
  };
  const auto a = random_set();
  const auto b = random_set();
  const auto c = random_set();

  const double dab = jaccard_distance(a, b);
  const double dba = jaccard_distance(b, a);
  const double dac = jaccard_distance(a, c);
  const double dcb = jaccard_distance(c, b);

  EXPECT_GE(dab, 0.0);
  EXPECT_LE(dab, 1.0);
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, a), 0.0);
  // Triangle inequality.
  EXPECT_LE(dab, dac + dcb + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSets, JaccardPropertyTest,
    testing::Combine(testing::Range(1, 9),
                     testing::Values(0.05, 0.3, 0.7)));

}  // namespace
}  // namespace landlord::spec
