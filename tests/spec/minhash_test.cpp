#include "spec/minhash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "spec/jaccard.hpp"
#include "util/rng.hpp"

namespace landlord::spec {
namespace {

using pkg::package_id;

PackageSet random_set(util::Rng& rng, std::size_t universe, double density) {
  PackageSet s(universe);
  for (std::uint32_t i = 0; i < universe; ++i) {
    if (rng.chance(density)) s.insert(package_id(i));
  }
  return s;
}

TEST(MinHash, SignatureLengthEqualsK) {
  MinHasher hasher(64);
  PackageSet s(100);
  s.insert(package_id(1));
  EXPECT_EQ(hasher.sign(s).size(), 64u);
}

TEST(MinHash, DeterministicForSameInput) {
  MinHasher hasher(32);
  util::Rng rng(5);
  const auto s = random_set(rng, 200, 0.2);
  const auto sig1 = hasher.sign(s);
  const auto sig2 = hasher.sign(s);
  EXPECT_EQ(sig1.components, sig2.components);
}

TEST(MinHash, IdenticalSetsEstimateOne) {
  MinHasher hasher(64);
  util::Rng rng(6);
  const auto s = random_set(rng, 200, 0.3);
  EXPECT_DOUBLE_EQ(MinHasher::estimate_similarity(hasher.sign(s), hasher.sign(s)),
                   1.0);
}

TEST(MinHash, DisjointSetsEstimateNearZero) {
  MinHasher hasher(128);
  PackageSet a(400), b(400);
  for (std::uint32_t i = 0; i < 100; ++i) a.insert(package_id(i));
  for (std::uint32_t i = 200; i < 300; ++i) b.insert(package_id(i));
  EXPECT_LT(MinHasher::estimate_similarity(hasher.sign(a), hasher.sign(b)), 0.1);
}

TEST(MinHash, EstimateTracksExactJaccard) {
  // The estimator's standard error is ~sqrt(s(1-s)/k); with k=256 we
  // check within 3 sigma over several random pairs.
  MinHasher hasher(256);
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = random_set(rng, 500, 0.3);
    auto b = a;
    // Perturb b so similarity varies by trial.
    for (std::uint32_t i = 0; i < 500; ++i) {
      if (rng.chance(0.1)) {
        const auto id = package_id(i);
        if (b.contains(id)) b.erase(id); else b.insert(id);
      }
    }
    const double exact = jaccard_similarity(a, b);
    const double estimate =
        MinHasher::estimate_similarity(hasher.sign(a), hasher.sign(b));
    const double sigma = std::sqrt(exact * (1.0 - exact) / 256.0);
    EXPECT_NEAR(estimate, exact, std::max(3.0 * sigma, 0.04));
  }
}

TEST(MinHash, DifferentSeedsGiveDifferentSignatures) {
  MinHasher h1(32, 1), h2(32, 2);
  util::Rng rng(8);
  const auto s = random_set(rng, 200, 0.3);
  EXPECT_NE(h1.sign(s).components, h2.sign(s).components);
}

TEST(MinHash, EmptySetSignatureIsSentinel) {
  MinHasher hasher(16);
  const auto sig = hasher.sign(PackageSet(100));
  for (auto component : sig.components) {
    EXPECT_EQ(component, std::numeric_limits<std::uint64_t>::max());
  }
}

TEST(LshIndex, FindsIdenticalItem) {
  MinHasher hasher(64);
  LshIndex index(16);
  util::Rng rng(9);
  const auto s = random_set(rng, 300, 0.25);
  index.insert(42, hasher.sign(s));
  const auto candidates = index.candidates(hasher.sign(s));
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 42u) !=
              candidates.end());
}

TEST(LshIndex, HighSimilarityPairsAreCandidates) {
  MinHasher hasher(64);
  LshIndex index(32);  // 2 rows/band: lenient threshold
  util::Rng rng(10);
  const auto a = random_set(rng, 300, 0.3);
  auto b = a;
  // ~95% similar.
  for (std::uint32_t i = 0; i < 300; ++i) {
    if (rng.chance(0.01)) b.insert(package_id(i));
  }
  index.insert(1, hasher.sign(a));
  const auto candidates = index.candidates(hasher.sign(b));
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 1u) !=
              candidates.end());
}

TEST(LshIndex, DistantItemsUsuallyNotCandidates) {
  MinHasher hasher(64);
  LshIndex index(8);  // 8 rows/band: strict threshold
  util::Rng rng(11);
  int false_candidates = 0;
  for (std::uint64_t item = 0; item < 50; ++item) {
    index.insert(item, hasher.sign(random_set(rng, 400, 0.1)));
  }
  for (int probe = 0; probe < 20; ++probe) {
    const auto probe_set = random_set(rng, 400, 0.1);
    false_candidates += static_cast<int>(index.candidates(hasher.sign(probe_set)).size());
  }
  // Random 10%-density sets have Jaccard ~0.05; with 8-row bands nearly
  // none should collide.
  EXPECT_LT(false_candidates, 10);
}

TEST(LshIndex, EraseRemovesItem) {
  MinHasher hasher(64);
  LshIndex index(16);
  util::Rng rng(12);
  const auto s = random_set(rng, 300, 0.25);
  const auto sig = hasher.sign(s);
  index.insert(7, sig);
  EXPECT_EQ(index.size(), 1u);
  index.erase(7, sig);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.candidates(sig).empty());
}

TEST(LshIndex, EraseUnknownItemIsNoop) {
  MinHasher hasher(64);
  LshIndex index(16);
  util::Rng rng(13);
  index.erase(99, hasher.sign(random_set(rng, 300, 0.2)));
  EXPECT_EQ(index.size(), 0u);
}

TEST(MinHash, SignPrefixMatchesFullSignaturePrefix) {
  // Shard homing hashes only band 0, so sign_prefix must reproduce the
  // full signature's leading rows exactly (and clamp past k).
  MinHasher hasher(64);
  util::Rng rng(15);
  const auto s = random_set(rng, 300, 0.25);
  const auto full = hasher.sign(s);
  for (const std::size_t rows : {std::size_t{1}, std::size_t{4}, std::size_t{64},
                                 std::size_t{100}}) {
    const auto prefix = hasher.sign_prefix(s, rows);
    ASSERT_EQ(prefix.size(), std::min(rows, full.size()));
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(prefix.components[i], full.components[i]) << "row " << i;
    }
  }
  // Hashing a one-band prefix equals hashing band 0 of the full signature.
  EXPECT_EQ(band_signature_hash(hasher.sign_prefix(s, 4), 1),
            band_signature_hash(full, 16, 0));
}

TEST(LshIndex, CandidatesAreDeduplicated) {
  MinHasher hasher(64);
  LshIndex index(16);
  util::Rng rng(14);
  const auto s = random_set(rng, 300, 0.3);
  index.insert(5, hasher.sign(s));
  // Probing with the identical signature matches all 16 bands but the
  // item must appear once.
  const auto candidates = index.candidates(hasher.sign(s));
  EXPECT_EQ(std::count(candidates.begin(), candidates.end(), 5u), 1);
}

}  // namespace
}  // namespace landlord::spec
