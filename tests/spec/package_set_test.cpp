#include "spec/package_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace landlord::spec {
namespace {

using pkg::package_id;

TEST(PackageSet, StartsEmpty) {
  PackageSet s(100);
  EXPECT_EQ(s.universe(), 100u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(PackageSet, InsertEraseContains) {
  PackageSet s(50);
  s.insert(package_id(7));
  EXPECT_TRUE(s.contains(package_id(7)));
  EXPECT_EQ(s.size(), 1u);
  s.insert(package_id(7));  // idempotent
  EXPECT_EQ(s.size(), 1u);
  s.erase(package_id(7));
  EXPECT_FALSE(s.contains(package_id(7)));
  EXPECT_EQ(s.size(), 0u);
  s.erase(package_id(7));  // idempotent
  EXPECT_EQ(s.size(), 0u);
}

TEST(PackageSet, FromIds) {
  const std::vector<pkg::PackageId> ids = {package_id(1), package_id(3),
                                           package_id(3)};
  const auto s = PackageSet::from_ids(10, ids);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(package_id(1)));
  EXPECT_TRUE(s.contains(package_id(3)));
}

TEST(PackageSet, MergeIsUnion) {
  PackageSet a(20), b(20);
  a.insert(package_id(1));
  a.insert(package_id(2));
  b.insert(package_id(2));
  b.insert(package_id(3));
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.contains(package_id(3)));
}

TEST(PackageSet, SubtractIsDifference) {
  PackageSet a(20), b(20);
  a.insert(package_id(1));
  a.insert(package_id(2));
  b.insert(package_id(2));
  a.subtract(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_TRUE(a.contains(package_id(1)));
}

TEST(PackageSet, SubsetChecks) {
  PackageSet small(30), big(30);
  small.insert(package_id(5));
  big.insert(package_id(5));
  big.insert(package_id(6));
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
  EXPECT_TRUE(PackageSet(30).is_subset_of(small));
}

TEST(PackageSet, SubsetCardinalityPreReject) {
  // bigger set can never be a subset of a smaller one.
  PackageSet a(10), b(10);
  a.insert(package_id(0));
  a.insert(package_id(1));
  b.insert(package_id(0));
  EXPECT_FALSE(a.is_subset_of(b));
}

TEST(PackageSet, IntersectionAndUnionSizes) {
  PackageSet a(100), b(100);
  for (std::uint32_t i = 0; i < 60; ++i) a.insert(package_id(i));
  for (std::uint32_t i = 40; i < 100; ++i) b.insert(package_id(i));
  EXPECT_EQ(a.intersection_size(b), 20u);
  EXPECT_EQ(a.union_size(b), 100u);
}

TEST(PackageSet, UnionedWithLeavesOperandsUntouched) {
  PackageSet a(10), b(10);
  a.insert(package_id(1));
  b.insert(package_id(2));
  const auto u = a.unioned_with(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(PackageSet, Equality) {
  PackageSet a(10), b(10);
  EXPECT_EQ(a, b);
  a.insert(package_id(4));
  EXPECT_FALSE(a == b);
  b.insert(package_id(4));
  EXPECT_EQ(a, b);
}

TEST(PackageSet, ToIdsSortedAscending) {
  PackageSet s(100);
  s.insert(package_id(42));
  s.insert(package_id(3));
  s.insert(package_id(99));
  const auto ids = s.to_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(pkg::to_index(ids[0]), 3u);
  EXPECT_EQ(pkg::to_index(ids[1]), 42u);
  EXPECT_EQ(pkg::to_index(ids[2]), 99u);
}

TEST(PackageSet, ForEachVisitsAllMembers) {
  PackageSet s(64);
  s.insert(package_id(0));
  s.insert(package_id(63));
  std::size_t visits = 0;
  s.for_each([&](pkg::PackageId) { ++visits; });
  EXPECT_EQ(visits, 2u);
}

TEST(PackageSet, AdoptBitset) {
  util::DynamicBitset bits(40);
  bits.set(10);
  bits.set(20);
  PackageSet s(std::move(bits));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(package_id(10)));
}

// Cached-count consistency under random operation sequences.
class PackageSetFuzzTest : public testing::TestWithParam<int> {};

TEST_P(PackageSetFuzzTest, CachedCountAlwaysMatchesBits) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PackageSet s(257);
  PackageSet other(257);
  for (int step = 0; step < 500; ++step) {
    const auto op = rng.uniform(6);
    const auto id = package_id(static_cast<std::uint32_t>(rng.uniform(257)));
    switch (op) {
      case 0: s.insert(id); break;
      case 1: s.erase(id); break;
      case 2: other.insert(id); break;
      case 3: other.erase(id); break;
      case 4: s.merge(other); break;
      case 5: s.subtract(other); break;
    }
    // The fused kernels maintain the cached cardinality in the same
    // pass as the word op — it must always equal a fresh popcount.
    ASSERT_EQ(s.size(), s.bits().count());
    ASSERT_EQ(other.size(), other.bits().count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackageSetFuzzTest, testing::Range(1, 6));

}  // namespace
}  // namespace landlord::spec
