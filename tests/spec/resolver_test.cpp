#include "spec/resolver.hpp"

#include <gtest/gtest.h>

namespace landlord::spec {
namespace {

pkg::Repository versioned_repo() {
  pkg::RepositoryBuilder b;
  b.add({"base", "1.0", 100, pkg::PackageTier::kCore, {}});
  b.add({"root", "6.16.00", 400, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"root", "6.18.04", 500, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"root", "6.20.02", 520, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"python", "2.7", 80, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"python", "3.8", 90, pkg::PackageTier::kLibrary, {"base/1.0"}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

VersionConstraint vc(const char* text) {
  auto result = parse_constraint(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

TEST(Resolver, VersionsNewestFirst) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const auto versions = resolver.versions_of("root");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(repo[versions[0]].version, "6.20.02");
  EXPECT_EQ(repo[versions[1]].version, "6.18.04");
  EXPECT_EQ(repo[versions[2]].version, "6.16.00");
}

TEST(Resolver, VersionsOfUnknownProjectEmpty) {
  const auto repo = versioned_repo();
  EXPECT_TRUE(Resolver(repo).versions_of("ghost").empty());
}

TEST(Resolver, BestVersionUnconstrained) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const auto best = resolver.best_version("root", {});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(repo[*best].version, "6.20.02");
}

TEST(Resolver, BestVersionWithUpperBound) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root<6.20")};
  const auto best = resolver.best_version("root", constraints);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(repo[*best].version, "6.18.04");
}

TEST(Resolver, BestVersionExactPin) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root==6.16.00")};
  const auto best = resolver.best_version("root", constraints);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(repo[*best].version, "6.16.00");
}

TEST(Resolver, BestVersionIgnoresOtherProjectsConstraints) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("python==2.7")};
  const auto best = resolver.best_version("root", constraints);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(repo[*best].version, "6.20.02");
}

TEST(Resolver, BestVersionNoneSatisfies) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root>7.0")};
  EXPECT_FALSE(resolver.best_version("root", constraints).has_value());
}

TEST(Resolver, ResolveMultipleProjects) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root>=6.18"), vc("root<6.20"),
                                   vc("python>=3")};
  auto resolution = resolver.resolve(constraints);
  ASSERT_TRUE(resolution.ok()) << resolution.error().message;
  ASSERT_EQ(resolution.value().selected.size(), 2u);
  EXPECT_EQ(repo[resolution.value().selected[0]].version, "6.18.04");
  EXPECT_EQ(repo[resolution.value().selected[1]].version, "3.8");
  // The specification is dependency-closed (base included) and carries
  // the constraints.
  EXPECT_EQ(resolution.value().specification.size(), 3u);
  EXPECT_EQ(resolution.value().specification.constraints().size(), 3u);
}

TEST(Resolver, ResolveRejectsContradiction) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root==6.18.04"), vc("root==6.20.02")};
  auto resolution = resolver.resolve(constraints);
  ASSERT_FALSE(resolution.ok());
  EXPECT_NE(resolution.error().message.find("contradictory"), std::string::npos);
}

TEST(Resolver, ResolveRejectsUnknownProject) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("ghost>=1")};
  auto resolution = resolver.resolve(constraints);
  ASSERT_FALSE(resolution.ok());
  EXPECT_NE(resolution.error().message.find("unknown project"), std::string::npos);
}

TEST(Resolver, ResolveRejectsUnsatisfiableVersion) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  // Satisfiable in the abstract (dense version space) but no concrete
  // version exists between the bounds.
  const std::vector constraints = {vc("root>6.18.04"), vc("root<6.20")};
  auto resolution = resolver.resolve(constraints);
  ASSERT_FALSE(resolution.ok());
  EXPECT_NE(resolution.error().message.find("no version"), std::string::npos);
}

TEST(Resolver, ResolveEmptyConstraintsGivesEmptySpec) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  auto resolution = resolver.resolve({});
  ASSERT_TRUE(resolution.ok());
  EXPECT_TRUE(resolution.value().selected.empty());
  EXPECT_TRUE(resolution.value().specification.empty());
}

TEST(Resolver, NeConstraintSkipsNewest) {
  const auto repo = versioned_repo();
  const Resolver resolver(repo);
  const std::vector constraints = {vc("root!=6.20.02")};
  const auto best = resolver.best_version("root", constraints);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(repo[*best].version, "6.18.04");
}

}  // namespace
}  // namespace landlord::spec
