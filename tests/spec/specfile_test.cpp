#include "spec/specfile.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace landlord::spec {
namespace {

pkg::Repository versioned_repo() {
  pkg::RepositoryBuilder b;
  b.add({"base", "1.0", 100, pkg::PackageTier::kCore, {}});
  b.add({"root", "6.16.00", 400, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"root", "6.18.04", 500, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"root", "6.20.02", 520, pkg::PackageTier::kLibrary, {"base/1.0"}});
  b.add({"geant4", "10.6", 900, pkg::PackageTier::kLibrary, {"base/1.0"}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(Specfile, ParsesConstraintsCommentsBlanks) {
  auto result = parse_specfile_text(R"(# landlord requirements
root >= 6.18   # keep modern
root < 6.20

geant4 == 10.6
python
)");
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& constraints = result.value();
  ASSERT_EQ(constraints.size(), 4u);
  EXPECT_EQ(constraints[0].package, "root");
  EXPECT_EQ(constraints[0].op, ConstraintOp::kGe);
  EXPECT_EQ(constraints[1].op, ConstraintOp::kLt);
  EXPECT_EQ(constraints[2].version, "10.6");
  EXPECT_TRUE(constraints[3].version.empty());  // bare name: any version
}

TEST(Specfile, ReportsLineNumberOnError) {
  auto result = parse_specfile_text("root >= 6.18\n== oops\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 2"), std::string::npos);
}

TEST(Specfile, EmptyFileGivesNoConstraints) {
  auto result = parse_specfile_text("\n# nothing\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(Specfile, HandlesCrlf) {
  auto result = parse_specfile_text("root >= 6.18\r\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].version, "6.18");
}

TEST(Specfile, RoundTripsThroughWriter) {
  auto original = parse_specfile_text("root >= 6.18\nroot < 6.20\ngeant4 == 10.6\npython\n");
  ASSERT_TRUE(original.ok());
  std::ostringstream out;
  write_specfile(out, original.value());
  auto reparsed = parse_specfile_text(out.str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  ASSERT_EQ(reparsed.value().size(), original.value().size());
  for (std::size_t i = 0; i < original.value().size(); ++i) {
    EXPECT_EQ(reparsed.value()[i], original.value()[i]);
  }
}

TEST(Specfile, EndToEndResolution) {
  const auto repo = versioned_repo();
  std::istringstream in("root >= 6.18\nroot < 6.20\ngeant4\n");
  auto spec = specification_from_file(in, repo);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  // root 6.18.04, geant4 10.6, plus base via closure.
  EXPECT_EQ(spec.value().size(), 3u);
  EXPECT_TRUE(spec.value().packages().contains(*repo.find("root/6.18.04")));
  EXPECT_TRUE(spec.value().packages().contains(*repo.find("geant4/10.6")));
  EXPECT_TRUE(spec.value().packages().contains(*repo.find("base/1.0")));
  EXPECT_EQ(spec.value().constraints().size(), 3u);
}

TEST(Specfile, EndToEndUnsatisfiableFails) {
  const auto repo = versioned_repo();
  std::istringstream in("root > 6.20.02\n");
  auto spec = specification_from_file(in, repo);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().message.find("no version"), std::string::npos);
}

TEST(Specfile, EndToEndSyntaxErrorPropagates) {
  const auto repo = versioned_repo();
  std::istringstream in("root >=\n");
  EXPECT_FALSE(specification_from_file(in, repo).ok());
}

}  // namespace
}  // namespace landlord::spec
