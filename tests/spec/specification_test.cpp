#include "spec/specification.hpp"

#include <gtest/gtest.h>

namespace landlord::spec {
namespace {

using pkg::package_id;

pkg::Repository test_repo() {
  pkg::RepositoryBuilder b;
  b.add({"base", "1", 100, pkg::PackageTier::kCore, {}});
  b.add({"lib", "1", 50, pkg::PackageTier::kLibrary, {"base/1"}});
  b.add({"app", "1", 10, pkg::PackageTier::kLeaf, {"lib/1"}});
  b.add({"other", "1", 20, pkg::PackageTier::kLeaf, {"base/1"}});
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(Specification, FromRequestExpandsClosure) {
  const auto repo = test_repo();
  const std::vector<pkg::PackageId> request = {*repo.find("app/1")};
  const auto spec = Specification::from_request(repo, request, "test");
  EXPECT_EQ(spec.size(), 3u);  // app, lib, base
  EXPECT_EQ(spec.provenance(), "test");
}

TEST(Specification, EmptyRequestGivesEmptySpec) {
  const auto repo = test_repo();
  const auto spec = Specification::from_request(repo, {});
  EXPECT_TRUE(spec.empty());
}

TEST(Specification, SatisfiedBySupersetImage) {
  const auto repo = test_repo();
  const auto spec =
      Specification::from_request(repo, std::vector{*repo.find("app/1")});
  PackageSet everything(repo.size());
  for (std::uint32_t i = 0; i < repo.size(); ++i) everything.insert(package_id(i));
  EXPECT_TRUE(spec.satisfied_by(everything));
  EXPECT_TRUE(spec.satisfied_by(spec.packages()));
}

TEST(Specification, NotSatisfiedByPartialImage) {
  const auto repo = test_repo();
  const auto spec =
      Specification::from_request(repo, std::vector{*repo.find("app/1")});
  PackageSet partial(repo.size());
  partial.insert(*repo.find("app/1"));
  EXPECT_FALSE(spec.satisfied_by(partial));  // missing lib and base
}

TEST(Specification, DistanceToSelfIsZero) {
  const auto repo = test_repo();
  const auto spec =
      Specification::from_request(repo, std::vector{*repo.find("app/1")});
  EXPECT_DOUBLE_EQ(spec.distance_to(spec), 0.0);
}

TEST(Specification, DistanceReflectsSharedClosure) {
  const auto repo = test_repo();
  const auto a =
      Specification::from_request(repo, std::vector{*repo.find("app/1")});
  const auto b =
      Specification::from_request(repo, std::vector{*repo.find("other/1")});
  // a = {app, lib, base}, b = {other, base}; intersection {base}, union 4.
  EXPECT_DOUBLE_EQ(a.distance_to(b), 0.75);
}

TEST(Specification, MergeIsUnionOfPackagesAndConstraints) {
  const auto repo = test_repo();
  auto a = Specification::from_request(repo, std::vector{*repo.find("app/1")}, "a");
  auto b = Specification::from_request(repo, std::vector{*repo.find("other/1")}, "b");
  a.add_constraint({"python", ConstraintOp::kEq, "3.8"});
  b.add_constraint({"gcc", ConstraintOp::kGe, "9"});
  const auto merged = a.merged_with(b);
  EXPECT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.constraints().size(), 2u);
  EXPECT_EQ(merged.provenance(), "a");
  // Merged spec satisfies both constituents.
  EXPECT_TRUE(a.satisfied_by(merged.packages()));
  EXPECT_TRUE(b.satisfied_by(merged.packages()));
}

TEST(Specification, MergePrefersNonEmptyProvenance) {
  const auto repo = test_repo();
  const auto a = Specification::from_request(repo, std::vector{*repo.find("app/1")});
  const auto b =
      Specification::from_request(repo, std::vector{*repo.find("other/1")}, "named");
  EXPECT_EQ(a.merged_with(b).provenance(), "named");
}

TEST(Specification, CompatibleWithoutConstraints) {
  const auto repo = test_repo();
  const auto a = Specification::from_request(repo, std::vector{*repo.find("app/1")});
  const auto b = Specification::from_request(repo, std::vector{*repo.find("other/1")});
  EXPECT_TRUE(a.compatible_with(b));
}

TEST(Specification, IncompatibleConstraintsDetected) {
  const auto repo = test_repo();
  auto a = Specification::from_request(repo, std::vector{*repo.find("app/1")});
  auto b = Specification::from_request(repo, std::vector{*repo.find("other/1")});
  a.add_constraint({"python", ConstraintOp::kEq, "3.8"});
  b.add_constraint({"python", ConstraintOp::kEq, "3.9"});
  EXPECT_FALSE(a.compatible_with(b));
}

TEST(Specification, BytesSumsClosureSizes) {
  const auto repo = test_repo();
  const auto spec =
      Specification::from_request(repo, std::vector{*repo.find("app/1")});
  EXPECT_EQ(spec.bytes(repo), util::Bytes{160});  // 10 + 50 + 100
}

}  // namespace
}  // namespace landlord::spec
