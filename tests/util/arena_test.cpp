// ScratchArena / ArenaAllocator unit tests: alignment, overflow
// chaining, reset coalescing, and std::vector integration — the shapes
// the per-request decision path actually exercises.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

namespace landlord::util {
namespace {

TEST(ScratchArenaTest, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena(1024);
  auto* a = static_cast<unsigned char*>(arena.allocate(3, 1));
  auto* b = static_cast<unsigned char*>(arena.allocate(8, 8));
  auto* c = static_cast<unsigned char*>(arena.allocate(16, 16));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  // Writes must not overlap.
  std::memset(a, 0xAA, 3);
  std::memset(b, 0xBB, 8);
  std::memset(c, 0xCC, 16);
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
  EXPECT_EQ(c[0], 0xCC);
}

TEST(ScratchArenaTest, ZeroByteAllocationReturnsValidPointer) {
  ScratchArena arena(64);
  void* p = arena.allocate(0, 1);
  EXPECT_NE(p, nullptr);
}

TEST(ScratchArenaTest, OverflowChainsAndResetCoalesces) {
  ScratchArena arena(64);
  // Overflow the first block several times.
  for (int i = 0; i < 8; ++i) {
    void* p = arena.allocate(128, 8);
    ASSERT_NE(p, nullptr);
  }
  const std::size_t chained = arena.capacity();
  EXPECT_GT(chained, 64u);

  arena.reset();
  // After reset the chain is one block; capacity does not shrink below
  // what the overflow episode proved necessary.
  const std::size_t coalesced = arena.capacity();
  EXPECT_GE(coalesced, 8u * 128u);

  // Steady state: the same allocation pattern now fits without growth.
  for (int i = 0; i < 8; ++i) (void)arena.allocate(128, 8);
  EXPECT_EQ(arena.capacity(), coalesced);
  arena.reset();
  EXPECT_EQ(arena.capacity(), coalesced);
}

TEST(ScratchArenaTest, LargeSingleAllocationIsServed) {
  ScratchArena arena(64);
  const std::size_t big = 1 << 20;
  auto* p = static_cast<unsigned char*>(arena.allocate(big, 64));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;  // ASan would flag an under-sized block here
  EXPECT_EQ(p[0] + p[big - 1], 3);
}

TEST(ScratchArenaTest, ResetInvalidatesButReusesStorage) {
  ScratchArena arena(256);
  void* first = arena.allocate(16, 8);
  arena.reset();
  void* second = arena.allocate(16, 8);
  // Single-block arena bumps from the start again.
  EXPECT_EQ(first, second);
}

TEST(ArenaAllocatorTest, VectorGrowsCorrectly) {
  ScratchArena arena(128);  // small: forces vector regrowth to overflow
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(ArenaAllocatorTest, EqualityTracksArenaIdentity) {
  ScratchArena a(64);
  ScratchArena b(64);
  ArenaAllocator<int> aa(a);
  ArenaAllocator<int> ab(b);
  ArenaAllocator<long> aa2(a);
  EXPECT_TRUE(aa == ArenaAllocator<int>(a));
  EXPECT_TRUE(aa == aa2);
  EXPECT_FALSE(aa == ab);
}

TEST(ArenaAllocatorTest, ReusePatternMatchesRequestLoop) {
  // The cache's per-request pattern: build a candidate list, sort it,
  // drop it, reset. After warm-up the arena footprint is stable.
  ScratchArena arena;
  std::size_t stable = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<double, ArenaAllocator<double>> cand{
        ArenaAllocator<double>(arena)};
    for (int i = 0; i < 300; ++i) cand.push_back(300.0 - i);
    std::sort(cand.begin(), cand.end());
    EXPECT_DOUBLE_EQ(cand.front(), 1.0);
    if (round == 10) stable = arena.capacity();
    if (round > 10) {
      EXPECT_EQ(arena.capacity(), stable);
    }
    // Vector must be destroyed before reset (destructor is trivial for
    // double; deallocate is a no-op either way).
    cand.clear();
    arena.reset();
  }
}

}  // namespace
}  // namespace landlord::util
