#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace landlord::util {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, SetIdempotent) {
  DynamicBitset b(10);
  b.set(5);
  b.set(5);
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, ClearResetsEverything) {
  DynamicBitset b(128);
  for (std::size_t i = 0; i < 128; i += 3) b.set(i);
  b.clear();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynamicBitset, UnionIntersectionDifference) {
  DynamicBitset a(200), b(200);
  a.set(1);
  a.set(100);
  a.set(150);
  b.set(100);
  b.set(199);

  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 4u);
  EXPECT_TRUE(u.test(1) && u.test(100) && u.test(150) && u.test(199));

  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(100));

  DynamicBitset d = a;
  d -= b;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_TRUE(d.test(1) && d.test(150));
  EXPECT_FALSE(d.test(100));
}

TEST(DynamicBitset, CountsWithoutMaterialising) {
  DynamicBitset a(128), b(128);
  for (std::size_t i = 0; i < 64; ++i) a.set(i);
  for (std::size_t i = 32; i < 96; ++i) b.set(i);
  EXPECT_EQ(a.intersection_count(b), 32u);
  EXPECT_EQ(a.union_count(b), 96u);
}

TEST(DynamicBitset, SubsetDetection) {
  DynamicBitset small(100), big(100);
  small.set(10);
  small.set(90);
  big.set(10);
  big.set(90);
  big.set(50);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));  // reflexive
}

TEST(DynamicBitset, EmptySetIsSubsetOfAll) {
  DynamicBitset empty(64), any(64);
  any.set(3);
  EXPECT_TRUE(empty.is_subset_of(any));
  EXPECT_TRUE(empty.is_subset_of(empty));
}

TEST(DynamicBitset, Intersects) {
  DynamicBitset a(100), b(100), c(100);
  a.set(5);
  b.set(5);
  c.set(6);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(DynamicBitset, Equality) {
  DynamicBitset a(50), b(50);
  EXPECT_EQ(a, b);
  a.set(7);
  EXPECT_NE(a, b);
  b.set(7);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, ForEachSetVisitsInOrder) {
  DynamicBitset b(150);
  const std::vector<std::size_t> expected = {0, 63, 64, 127, 149};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> visited;
  b.for_each_set([&visited](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(DynamicBitset, ToIndicesMatchesForEach) {
  DynamicBitset b(100);
  b.set(2);
  b.set(64);
  b.set(99);
  EXPECT_EQ(b.to_indices(), (std::vector<std::uint32_t>{2, 64, 99}));
}

TEST(DynamicBitset, NonMultipleOf64Sizes) {
  DynamicBitset b(65);
  b.set(64);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.word_count(), 2u);
}

TEST(DynamicBitset, FusedOpsReturnResultingCardinality) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  for (std::size_t i = 0; i < 200; i += 3) a.set(i);
  for (std::size_t i = 0; i < 200; i += 5) b.set(i);

  DynamicBitset u = a;
  const std::size_t u_count = u.or_assign_count(b);
  EXPECT_EQ(u_count, u.count());
  DynamicBitset expect_u = a;
  expect_u |= b;
  EXPECT_EQ(u, expect_u);

  DynamicBitset n = a;
  const std::size_t n_count = n.and_assign_count(b);
  EXPECT_EQ(n_count, n.count());
  EXPECT_EQ(n.count(), a.intersection_count(b));

  DynamicBitset d = a;
  const std::size_t d_count = d.and_not_assign_count(b);
  EXPECT_EQ(d_count, d.count());
  EXPECT_EQ(d.count(), a.count() - a.intersection_count(b));
}

// Regression for the release-mode hardening: a cross-universe binary
// operation used to be guarded only by assert (compiled out of release
// builds → silent out-of-bounds read, widened to 32 bytes by the SIMD
// kernels). It must now abort in every build mode.
using DynamicBitsetDeathTest = ::testing::Test;

TEST(DynamicBitsetDeathTest, MismatchedUniverseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DynamicBitset small(64);
  DynamicBitset large(9660);
  EXPECT_DEATH((void)small.is_subset_of(large), "mismatched universes");
  EXPECT_DEATH((void)small.intersects(large), "mismatched universes");
  EXPECT_DEATH((void)small.intersection_count(large), "mismatched universes");
  EXPECT_DEATH((void)small.union_count(large), "mismatched universes");
  EXPECT_DEATH(small |= large, "mismatched universes");
  EXPECT_DEATH(small &= large, "mismatched universes");
  EXPECT_DEATH(small -= large, "mismatched universes");
  EXPECT_DEATH((void)small.or_assign_count(large), "mismatched universes");
  EXPECT_DEATH((void)small.and_assign_count(large), "mismatched universes");
  EXPECT_DEATH((void)small.and_not_assign_count(large), "mismatched universes");
}

// Property sweep: random sets obey set algebra identities.
class BitsetPropertyTest : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitsetPropertyTest, AlgebraIdentitiesHold) {
  const auto [universe, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  DynamicBitset a(static_cast<std::size_t>(universe));
  DynamicBitset b(static_cast<std::size_t>(universe));
  for (int i = 0; i < universe; ++i) {
    if (rng.chance(0.3)) a.set(static_cast<std::size_t>(i));
    if (rng.chance(0.3)) b.set(static_cast<std::size_t>(i));
  }

  // |A∪B| = |A| + |B| - |A∩B|
  EXPECT_EQ(a.union_count(b), a.count() + b.count() - a.intersection_count(b));
  // Symmetry
  EXPECT_EQ(a.intersection_count(b), b.intersection_count(a));
  EXPECT_EQ(a.union_count(b), b.union_count(a));
  // A∩B ⊆ A ⊆ A∪B
  DynamicBitset inter = a;
  inter &= b;
  DynamicBitset uni = a;
  uni |= b;
  EXPECT_TRUE(inter.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(uni));
  // (A \ B) ∩ B = ∅
  DynamicBitset diff = a;
  diff -= b;
  EXPECT_FALSE(diff.intersects(b) && diff.intersection_count(b) > 0);
  EXPECT_EQ(diff.intersection_count(b), 0u);
  // A = (A \ B) ∪ (A ∩ B)
  DynamicBitset rebuilt = diff;
  rebuilt |= inter;
  EXPECT_EQ(rebuilt, a);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSets, BitsetPropertyTest,
    testing::Combine(testing::Values(1, 13, 64, 65, 128, 1000, 9660),
                     testing::Values(1, 2, 3)));

}  // namespace
}  // namespace landlord::util
