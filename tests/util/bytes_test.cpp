#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace landlord::util {
namespace {

TEST(FormatBytes, PlainBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1023), "1023 B");
}

TEST(FormatBytes, BinaryUnits) {
  EXPECT_EQ(format_bytes(kKiB), "1.00 KiB");
  EXPECT_EQ(format_bytes(kMiB), "1.00 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
  EXPECT_EQ(format_bytes(kTiB), "1.00 TiB");
}

TEST(FormatBytes, FractionalValues) {
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(kGiB * 5 / 2), "2.50 GiB");
}

TEST(FormatBytes, StopsAtTiB) {
  EXPECT_EQ(format_bytes(2048 * kTiB), "2048.00 TiB");
}

TEST(ToGib, ExactConversions) {
  EXPECT_DOUBLE_EQ(to_gib(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(to_gib(kGiB / 2), 0.5);
  EXPECT_DOUBLE_EQ(to_tib(kTiB * 3), 3.0);
}

TEST(ParseBytes, PlainNumber) {
  EXPECT_EQ(parse_bytes("100"), Bytes{100});
  EXPECT_EQ(parse_bytes("0"), Bytes{0});
}

TEST(ParseBytes, Suffixes) {
  EXPECT_EQ(parse_bytes("1K"), kKiB);
  EXPECT_EQ(parse_bytes("1KB"), kKiB);
  EXPECT_EQ(parse_bytes("1KiB"), kKiB);
  EXPECT_EQ(parse_bytes("2M"), 2 * kMiB);
  EXPECT_EQ(parse_bytes("3G"), 3 * kGiB);
  EXPECT_EQ(parse_bytes("4T"), 4 * kTiB);
}

TEST(ParseBytes, CaseInsensitive) {
  EXPECT_EQ(parse_bytes("1k"), kKiB);
  EXPECT_EQ(parse_bytes("1gb"), kGiB);
  EXPECT_EQ(parse_bytes("1tib"), kTiB);
}

TEST(ParseBytes, FractionalValues) {
  EXPECT_EQ(parse_bytes("1.5K"), Bytes{1536});
  EXPECT_EQ(parse_bytes("0.5G"), kGiB / 2);
}

TEST(ParseBytes, WhitespaceTolerant) {
  EXPECT_EQ(parse_bytes("  2 GiB "), 2 * kGiB);
  EXPECT_EQ(parse_bytes("\t1K"), kKiB);
}

TEST(ParseBytes, ExplicitByteSuffix) {
  EXPECT_EQ(parse_bytes("100B"), Bytes{100});
  EXPECT_EQ(parse_bytes("100 b"), Bytes{100});
}

TEST(ParseBytes, RejectsMalformed) {
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("abc").has_value());
  EXPECT_FALSE(parse_bytes("1X").has_value());
  EXPECT_FALSE(parse_bytes("-5K").has_value());
  EXPECT_FALSE(parse_bytes("1Kib extra").has_value());
  EXPECT_FALSE(parse_bytes("1Bx").has_value());
}

TEST(ParseBytes, RoundTripsFormatMagnitudes) {
  for (Bytes v : {kKiB, kMiB, kGiB, kTiB, 3 * kGiB}) {
    const auto parsed = parse_bytes(format_bytes(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

}  // namespace
}  // namespace landlord::util
