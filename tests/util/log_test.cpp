#include "util/log.hpp"

#include <gtest/gtest.h>

namespace landlord::util {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, SuppressedMessagesDoNotEvaluateExpensively) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  // operator<< short-circuits below the level; the expression is still
  // evaluated (stream semantics), but nothing is formatted or emitted.
  LANDLORD_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, EmitsAtOrAboveLevel) {
  // Smoke: emitting at every level must not crash or deadlock.
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  LANDLORD_LOG_DEBUG << "debug " << 1;
  LANDLORD_LOG_INFO << "info " << 2.5;
  LANDLORD_LOG_WARN << "warn";
  LANDLORD_LOG_ERROR << "error";
  set_log_level(original);
}

TEST(Log, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace landlord::util
