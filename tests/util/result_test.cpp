#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace landlord::util {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Error{"bad input"});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error().message, "bad input");
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  auto moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "def";
  EXPECT_EQ(r.value(), "abcdef");
}

TEST(Error, AtLineFormatsContext) {
  const Error e = Error::at_line(17, "unexpected token");
  EXPECT_EQ(e.message, "line 17: unexpected token");
}

TEST(Result, WorksWithMoveOnlyTypes) {
  struct MoveOnly {
    explicit MoveOnly(int x) : value(x) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    int value;
  };
  Result<MoveOnly> r(MoveOnly{9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::move(r).value().value, 9);
}

}  // namespace
}  // namespace landlord::util
