#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace landlord::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a();
  a.reseed(99);
  EXPECT_EQ(a(), first);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(7);
  Rng s1 = root.split(1);
  Rng s1_again = root.split(1);
  EXPECT_EQ(s1(), s1_again());
  int equal = 0;
  Rng x = root.split(1), y = root.split(2);
  for (int i = 0; i < 1000; ++i) equal += (x() == y()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.split(3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(21);
  std::array<int, 10> histogram{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.uniform(10)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int successes = 0;
  for (int i = 0; i < 100000; ++i) successes += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(successes / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.1);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(37);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], std::exp(2.0), 0.2);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(41);
  std::array<int, 100> histogram{};
  for (int i = 0; i < 100000; ++i) {
    const std::size_t r = rng.zipf(100, 1.0);
    ASSERT_LT(r, 100u);
    ++histogram[r];
  }
  // Rank 0 should dominate rank 50 heavily under s=1.
  EXPECT_GT(histogram[0], 10 * histogram[50]);
}

TEST(Rng, ZipfZeroSkewIsUniform) {
  Rng rng(43);
  std::array<int, 10> histogram{};
  for (int i = 0; i < 50000; ++i) ++histogram[rng.zipf(10, 0.0)];
  for (int count : histogram) EXPECT_NEAR(count, 5000, 500);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(100, 30);
    ASSERT_EQ(sample.size(), 30u);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(53);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementZero) {
  Rng rng(59);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SampleWithoutReplacementCoversPopulation) {
  // Every element should be reachable over many draws.
  Rng rng(61);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000 && seen.size() < 20; ++i) {
    for (auto v : rng.sample_without_replacement(20, 3)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(67);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(71);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, values);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(73);
  const std::vector<int> values = {3, 1, 4, 1, 5};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(std::span<const int>(values));
    EXPECT_TRUE(std::find(values.begin(), values.end(), v) != values.end());
  }
}

TEST(Splitmix64, KnownFixpointFreeAndDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_NE(s1, 0u);  // state advanced
}

}  // namespace
}  // namespace landlord::util
