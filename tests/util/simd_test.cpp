// Differential suite for the vectorized set-operation kernels.
//
// Every backend (portable 4×-unrolled, AVX2 when the CPU has it, and
// whatever active_ops() selected) is compared against naive per-word
// reference loops across universe sizes chosen to exercise the unroll
// tail (word counts n % 4 ∈ {0,1,2,3}) and the vector tail, with
// dense, sparse, empty, full, subset and disjoint operand mixes. The
// kernels must agree bit for bit: cache placements route through them,
// so any divergence is a placement bug, not a tolerance question.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace landlord::util::simd {
namespace {

// ---- Naive reference loops (deliberately unoptimized). ----

bool ref_subset_of(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool ref_intersects(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

std::size_t ref_intersection_count(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return c;
}

std::size_t ref_union_count(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  return c;
}

std::size_t ref_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i]));
  return c;
}

// ---- Operand generators. ----

using Words = std::vector<std::uint64_t>;

/// Masks bits above `bits` in the last word, as DynamicBitset maintains.
void mask_tail(Words& w, std::size_t bits) {
  const std::size_t rem = bits % 64;
  if (rem != 0 && !w.empty()) w.back() &= (~0ULL) >> (64 - rem);
}

Words random_words(Rng& rng, std::size_t bits, double density) {
  Words w((bits + 63) / 64, 0);
  for (auto& word : w) {
    for (int bit = 0; bit < 64; ++bit) {
      if (rng.chance(density)) word |= 1ULL << bit;
    }
  }
  mask_tail(w, bits);
  return w;
}

struct Backend {
  const char* label;
  const SetOps* ops;
};

std::vector<Backend> backends() {
  std::vector<Backend> out;
  out.push_back({"portable", &portable_ops()});
  if (const SetOps* avx2 = avx2_ops()) out.push_back({"avx2", avx2});
  out.push_back({"active", &active_ops()});
  return out;
}

class SimdDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SimdDifferentialTest, AllKernelsMatchReference) {
  const auto [bits, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + bits);
  const auto available = backends();

  // Densities spanning sparse HEP-like specs through near-full images,
  // plus structured pairs (equal, subset, disjoint-ish, empty, full).
  const double densities[] = {0.0, 0.01, 0.2, 0.5, 0.95, 1.0};
  for (const double da : densities) {
    for (const double db : densities) {
      Words a = random_words(rng, bits, da);
      Words b = random_words(rng, bits, db);
      // Every third pair, force a ⊆ b so the subset early-exit path
      // sees both outcomes often.
      if (rng.chance(0.33)) {
        for (std::size_t i = 0; i < b.size(); ++i) b[i] |= a[i];
      }
      const std::size_t n = a.size();

      const bool want_subset = ref_subset_of(a.data(), b.data(), n);
      const bool want_intersects = ref_intersects(a.data(), b.data(), n);
      const std::size_t want_inter = ref_intersection_count(a.data(), b.data(), n);
      const std::size_t want_union = ref_union_count(a.data(), b.data(), n);
      const std::size_t want_pop_a = ref_popcount(a.data(), n);

      for (const Backend& backend : available) {
        SCOPED_TRACE(std::string("backend=") + backend.label +
                     " bits=" + std::to_string(bits) +
                     " da=" + std::to_string(da) + " db=" + std::to_string(db));
        const SetOps& ops = *backend.ops;
        EXPECT_EQ(ops.subset_of(a.data(), b.data(), n), want_subset);
        EXPECT_EQ(ops.intersects(a.data(), b.data(), n), want_intersects);
        EXPECT_EQ(ops.intersection_count(a.data(), b.data(), n), want_inter);
        EXPECT_EQ(ops.union_count(a.data(), b.data(), n), want_union);
        EXPECT_EQ(ops.popcount(a.data(), n), want_pop_a);

        // Fused mutating kernels: run on copies, check both the
        // returned cardinality and the mutated words.
        {
          Words out = a;
          Words want = a;
          for (std::size_t i = 0; i < n; ++i) want[i] |= b[i];
          EXPECT_EQ(ops.or_assign_count(out.data(), b.data(), n),
                    ref_popcount(want.data(), n));
          EXPECT_EQ(out, want);
        }
        {
          Words out = a;
          Words want = a;
          for (std::size_t i = 0; i < n; ++i) want[i] &= ~b[i];
          EXPECT_EQ(ops.and_not_assign_count(out.data(), b.data(), n),
                    ref_popcount(want.data(), n));
          EXPECT_EQ(out, want);
        }
        {
          Words out = a;
          Words want = a;
          for (std::size_t i = 0; i < n; ++i) want[i] &= b[i];
          EXPECT_EQ(ops.and_assign_count(out.data(), b.data(), n),
                    ref_popcount(want.data(), n));
          EXPECT_EQ(out, want);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    UniverseSweep, SimdDifferentialTest,
    ::testing::Combine(
        // Universe sizes hitting every unroll/vector tail shape:
        // 1..257 bits cover word counts 1..5 (n % 4 ∈ {0,1,2,3}),
        // 9660 is the paper's CVMFS-derived package universe.
        ::testing::Values<std::size_t>(1, 63, 64, 65, 127, 128, 129, 191, 192,
                                       193, 255, 256, 257, 1000, 9660),
        ::testing::Values(1, 2, 3)));

TEST(SimdDispatchTest, ActiveBackendIsKnown) {
  const SetOps& active = active_ops();
  const std::string name = active.name;
  EXPECT_TRUE(name == "portable" || name == "avx2") << name;
  // LANDLORD_NO_SIMD=1 pins the portable path (tier1.sh runs this suite
  // under both settings; here we can only check consistency with the
  // environment the process was launched with).
  const char* no_simd = std::getenv("LANDLORD_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    EXPECT_EQ(name, "portable");
  }
}

TEST(SimdDispatchTest, PortableAlwaysAvailable) {
  const SetOps& portable = portable_ops();
  EXPECT_STREQ(portable.name, "portable");
  EXPECT_NE(portable.subset_of, nullptr);
  EXPECT_NE(portable.popcount, nullptr);
}

TEST(SimdDispatchTest, ZeroWordsIsIdentity) {
  for (const Backend& backend : backends()) {
    const SetOps& ops = *backend.ops;
    EXPECT_TRUE(ops.subset_of(nullptr, nullptr, 0));
    EXPECT_FALSE(ops.intersects(nullptr, nullptr, 0));
    EXPECT_EQ(ops.intersection_count(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.union_count(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.popcount(nullptr, 0), 0u);
    EXPECT_EQ(ops.or_assign_count(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.and_not_assign_count(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.and_assign_count(nullptr, nullptr, 0), 0u);
  }
}

}  // namespace
}  // namespace landlord::util::simd
