#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace landlord::util {
namespace {

TEST(Summary, MeanOfKnownSample) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, MedianOddCount) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, MedianEvenCountAveragesMiddlePair) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Summary, SingleElement) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MinMax) {
  const std::vector<double> data = {3.0, -1.0, 7.0, 0.0};
  Summary s{std::span<const double>(data)};
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Summary, StddevKnownValue) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample stddev of this classic example is sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, QuantileEndpoints) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
}

TEST(Summary, QuantileInterpolates) {
  Summary s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
}

// quantile() is a total function: every (sample, q) pair in this table
// must produce exactly the listed value — the release builds that
// drive every bench report and the serve RTT p999 used to hit an OOB
// index on the empty and out-of-range rows once asserts compiled out.
TEST(Summary, QuantileEdgeTable) {
  struct Case {
    std::vector<double> sample;
    double q;
    double want;
  };
  const Case cases[] = {
      // Empty summary: defined as 0 for every q.
      {{}, 0.0, 0.0},
      {{}, 0.5, 0.0},
      {{}, 1.0, 0.0},
      {{}, -1.0, 0.0},
      {{}, 2.0, 0.0},
      // Single sample: every q returns it, including out-of-range q.
      {{7.5}, 0.0, 7.5},
      {{7.5}, 0.5, 7.5},
      {{7.5}, 1.0, 7.5},
      {{7.5}, -0.25, 7.5},
      {{7.5}, 1.75, 7.5},
      // q clamped into [0, 1]: q<0 acts as 0, q>1 acts as 1.
      {{10.0, 20.0, 30.0}, -0.5, 10.0},
      {{10.0, 20.0, 30.0}, 1.5, 30.0},
      // Exact endpoints and interior interpolation for reference.
      {{10.0, 20.0, 30.0}, 0.0, 10.0},
      {{10.0, 20.0, 30.0}, 1.0, 30.0},
      {{10.0, 20.0, 30.0}, 0.5, 20.0},
      {{0.0, 10.0}, 0.999, 9.99},
  };
  for (const Case& c : cases) {
    Summary s;
    for (double v : c.sample) s.add(v);
    EXPECT_DOUBLE_EQ(s.quantile(c.q), c.want)
        << "n=" << c.sample.size() << " q=" << c.q;
  }
}

TEST(Summary, EmptySummaryMomentsAreZero) {
  const Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, AddAfterQuantileInvalidatesSortCache) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Summary, ConstructFromSpan) {
  const std::vector<double> data = {1.0, 2.0, 3.0};
  Summary s{std::span<const double>(data)};
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(OnlineStats, MatchesBatchMoments) {
  OnlineStats online;
  Summary batch;
  Summary reference;
  for (double v : {1.5, 2.5, 3.5, 10.0, -2.0}) {
    online.add(v);
    reference.add(v);
  }
  (void)batch;
  EXPECT_NEAR(online.mean(), reference.mean(), 1e-12);
  EXPECT_NEAR(online.stddev(), reference.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(online.min(), -2.0);
  EXPECT_DOUBLE_EQ(online.max(), 10.0);
  EXPECT_EQ(online.count(), 5u);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  // Welford should not cancel catastrophically near 1e9.
  for (double v : {1e9 + 1, 1e9 + 2, 1e9 + 3}) s.add(v);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(ElementwiseMedian, SingleSeries) {
  const std::vector<std::vector<double>> series = {{1.0, 2.0, 3.0}};
  EXPECT_EQ(elementwise_median(series), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ElementwiseMedian, OddReplicates) {
  const std::vector<std::vector<double>> series = {
      {1.0, 10.0}, {2.0, 30.0}, {3.0, 20.0}};
  EXPECT_EQ(elementwise_median(series), (std::vector<double>{2.0, 20.0}));
}

TEST(ElementwiseMedian, EvenReplicatesAverages) {
  const std::vector<std::vector<double>> series = {{1.0}, {3.0}};
  EXPECT_EQ(elementwise_median(series), (std::vector<double>{2.0}));
}

TEST(ElementwiseMedian, EmptySeriesLength) {
  const std::vector<std::vector<double>> series = {{}, {}};
  EXPECT_TRUE(elementwise_median(series).empty());
}

}  // namespace
}  // namespace landlord::util
