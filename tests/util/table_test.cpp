#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace landlord::util {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"field"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  t.add_row({"line\nbreak"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "field\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"k", "v"});
  t.add_row({"seed", "42"});
  const std::string path = testing::TempDir() + "/landlord_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "k,v\nseed,42\n");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvFailsForBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.save_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(Fmt, DoubleDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Integral) {
  EXPECT_EQ(fmt(std::uint64_t{0}), "0");
  EXPECT_EQ(fmt(std::uint64_t{18446744073709551615ULL}), "18446744073709551615");
}

}  // namespace
}  // namespace landlord::util
