#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace landlord::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto future = pool.submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(100);
  parallel_for(pool, 100, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ComputesDeterministicResult) {
  ThreadPool pool(4);
  std::vector<double> out(1000);
  parallel_for(pool, out.size(), [&out](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ParallelFor, RethrowsIterationException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 10,
                   [](std::size_t i) {
                     if (i == 3) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

}  // namespace
}  // namespace landlord::util
