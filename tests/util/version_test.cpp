// Direct tests of util::version_compare (the spec::constraint suite
// exercises it through the re-export; these pin the util-level contract
// and the orderings the resolver and version chains rely on).
#include "util/version.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace landlord::util {
namespace {

TEST(VersionCompare, TotalOrderOverRealisticVersions) {
  // Sorted with version_compare, these must come out in this exact order.
  std::vector<std::string> expected = {
      "v1.0-x86_64", "v1.2-x86_64", "v1.10-x86_64",
      "v2.0-x86_64", "v10.0-x86_64"};
  auto shuffled = expected;
  std::reverse(shuffled.begin(), shuffled.end());
  std::sort(shuffled.begin(), shuffled.end(),
            [](const std::string& a, const std::string& b) {
              return version_compare(a, b) < 0;
            });
  EXPECT_EQ(shuffled, expected);
}

TEST(VersionCompare, Transitivity) {
  const char* versions[] = {"1.0", "1.0.1", "1.1", "1.9", "1.10", "2", "2.0a"};
  for (const char* a : versions) {
    for (const char* b : versions) {
      for (const char* c : versions) {
        if (version_compare(a, b) <= 0 && version_compare(b, c) <= 0) {
          EXPECT_LE(version_compare(a, c), 0) << a << " " << b << " " << c;
        }
      }
    }
  }
}

TEST(VersionCompare, ReflexiveEquality) {
  for (const char* v : {"", "1", "1.0-rc2", "v6.18.04-x86_64-gcc8-opt"}) {
    EXPECT_EQ(version_compare(v, v), 0) << v;
  }
}

TEST(VersionCompare, SeparatorNormalisation) {
  EXPECT_EQ(version_compare("1-2-3", "1.2.3"), 0);
  EXPECT_EQ(version_compare("1_2", "1-2"), 0);
}

TEST(VersionCompare, EmptyIsSmallest) {
  EXPECT_LT(version_compare("", "0"), 0);
  EXPECT_LT(version_compare("", "a"), 0);
}

}  // namespace
}  // namespace landlord::util
